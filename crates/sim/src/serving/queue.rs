//! Bounded per-tenant admission queues with drop/defer accounting.
//!
//! An open-loop front end cannot push back on its users; it can only bound
//! how much work it holds. Each tenant owns one [`AdmissionQueue`] of bounded
//! depth. An arrival that finds the queue full is handled by the tenant's
//! [`OverflowPolicy`]:
//!
//! * [`OverflowPolicy::Drop`] — the request is rejected and counted; it never
//!   consumes service (load shedding — how goodput survives overload),
//! * [`OverflowPolicy::Defer`] — the request waits in an unbounded spillover
//!   buffer and is admitted (in arrival order) as soon as the bounded queue
//!   has room; the deferral is counted once.
//!
//! Every transition increments exactly one counter, giving the conservation
//! law the serving proptests lock: at any instant
//! `offered == completed + dropped + in_flight` (where in-flight counts
//! queued + deferred + in-service requests), and at drain — when all queues
//! are empty and nothing is in service — `offered == completed + dropped`.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// What a full admission queue does with a new arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverflowPolicy {
    /// Reject the request (count it and forget it).
    Drop,
    /// Park the request in an unbounded spillover buffer until the bounded
    /// queue has room; admission preserves arrival order.
    Defer,
}

impl OverflowPolicy {
    /// Short label for artifact rows.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            OverflowPolicy::Drop => "drop",
            OverflowPolicy::Defer => "defer",
        }
    }
}

/// One queued inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Per-tenant arrival sequence number (0-based, strictly increasing).
    pub seq: u64,
    /// Cycle at which the request arrived at the front end.
    pub arrival_cycle: u64,
}

/// Counters of one tenant's admission queue, maintained so that
/// `offered == admitted + dropped + deferred_waiting` and
/// `admitted == completed + in_queue + in_service` hold at every instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Requests the arrival process offered (everything that arrived).
    pub offered: u64,
    /// Requests admitted into the bounded queue (possibly after a deferral).
    pub admitted: u64,
    /// Requests rejected by [`OverflowPolicy::Drop`].
    pub dropped: u64,
    /// Requests that went through the spillover buffer at least once.
    pub deferred: u64,
    /// Requests whose service finished.
    pub completed: u64,
    /// Deepest the bounded queue ever got.
    pub peak_depth: u64,
}

/// A bounded FIFO admission queue with drop/defer overflow accounting.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    depth_limit: usize,
    overflow: OverflowPolicy,
    queue: VecDeque<Request>,
    spillover: VecDeque<Request>,
    stats: QueueStats,
}

impl AdmissionQueue {
    /// Creates an empty queue with the given bounded depth (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics on a zero depth limit — a queue that can hold nothing can
    /// admit nothing.
    #[must_use]
    pub fn new(depth_limit: usize, overflow: OverflowPolicy) -> Self {
        assert!(depth_limit > 0, "admission queue depth must be at least 1");
        AdmissionQueue {
            depth_limit,
            overflow,
            queue: VecDeque::new(),
            spillover: VecDeque::new(),
            stats: QueueStats::default(),
        }
    }

    /// Offers one arrival. Admits it if the bounded queue has room, otherwise
    /// applies the overflow policy. Spillover from earlier deferrals is
    /// admitted first so arrival order is preserved.
    pub fn offer(&mut self, request: Request) {
        self.stats.offered += 1;
        self.admit_deferred();
        if self.queue.len() < self.depth_limit && self.spillover.is_empty() {
            self.push_admitted(request);
        } else {
            match self.overflow {
                OverflowPolicy::Drop => self.stats.dropped += 1,
                OverflowPolicy::Defer => {
                    self.stats.deferred += 1;
                    self.spillover.push_back(request);
                }
            }
        }
    }

    /// Moves deferred requests into the bounded queue while there is room
    /// (called after every service pop and before every admission, so a
    /// deferred request is admitted at the first opportunity).
    pub fn admit_deferred(&mut self) {
        while self.queue.len() < self.depth_limit {
            let Some(request) = self.spillover.pop_front() else {
                return;
            };
            self.push_admitted(request);
        }
    }

    fn push_admitted(&mut self, request: Request) {
        self.queue.push_back(request);
        self.stats.admitted += 1;
        self.stats.peak_depth = self.stats.peak_depth.max(self.queue.len() as u64);
    }

    /// Pops the request at the head of the queue for service (FIFO), backfilling
    /// from the spillover buffer.
    pub fn pop_for_service(&mut self) -> Option<Request> {
        let request = self.queue.pop_front()?;
        self.admit_deferred();
        Some(request)
    }

    /// Records one completed request.
    pub fn complete(&mut self) {
        self.stats.completed += 1;
    }

    /// Requests currently waiting (bounded queue + spillover).
    #[must_use]
    pub fn waiting(&self) -> u64 {
        (self.queue.len() + self.spillover.len()) as u64
    }

    /// Requests currently in the bounded queue.
    #[must_use]
    pub fn depth(&self) -> u64 {
        self.queue.len() as u64
    }

    /// True when nothing is waiting.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.queue.is_empty() && self.spillover.is_empty()
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(seq: u64) -> Request {
        Request {
            seq,
            arrival_cycle: seq * 10,
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_depth_is_rejected() {
        let _ = AdmissionQueue::new(0, OverflowPolicy::Drop);
    }

    #[test]
    fn drop_policy_sheds_overflow_and_conserves_requests() {
        let mut q = AdmissionQueue::new(2, OverflowPolicy::Drop);
        for seq in 0..5 {
            q.offer(request(seq));
        }
        let s = q.stats();
        assert_eq!((s.offered, s.admitted, s.dropped), (5, 2, 3));
        assert_eq!(s.peak_depth, 2);
        assert_eq!(s.offered, s.admitted + s.dropped, "conservation at rest");
        // Service pops in FIFO order; dropped requests never reappear.
        assert_eq!(q.pop_for_service().unwrap().seq, 0);
        assert_eq!(q.pop_for_service().unwrap().seq, 1);
        assert!(q.pop_for_service().is_none());
        assert!(q.is_drained());
    }

    #[test]
    fn defer_policy_loses_nothing_and_preserves_order() {
        let mut q = AdmissionQueue::new(2, OverflowPolicy::Defer);
        for seq in 0..5 {
            q.offer(request(seq));
        }
        let s = q.stats();
        assert_eq!((s.offered, s.dropped, s.deferred), (5, 0, 3));
        assert_eq!(q.waiting(), 5);
        // Every request surfaces exactly once, in arrival order, as service
        // frees queue slots.
        let mut served = Vec::new();
        while let Some(r) = q.pop_for_service() {
            served.push(r.seq);
            q.complete();
        }
        assert_eq!(served, vec![0, 1, 2, 3, 4]);
        let s = q.stats();
        assert_eq!(s.admitted, 5, "deferred requests are admitted exactly once");
        assert_eq!(s.completed, 5);
        assert_eq!(s.offered, s.completed + s.dropped, "conservation at drain");
    }

    #[test]
    fn deferred_requests_admit_before_new_arrivals() {
        // A new arrival must not jump over older spillover: request 2 is
        // deferred while 0/1 occupy the queue; after a pop, 2 enters before a
        // newly offered 3.
        let mut q = AdmissionQueue::new(2, OverflowPolicy::Defer);
        for seq in 0..3 {
            q.offer(request(seq));
        }
        assert_eq!(q.pop_for_service().unwrap().seq, 0);
        q.offer(request(3));
        assert_eq!(q.pop_for_service().unwrap().seq, 1);
        assert_eq!(q.pop_for_service().unwrap().seq, 2);
        assert_eq!(q.pop_for_service().unwrap().seq, 3);
    }
}
