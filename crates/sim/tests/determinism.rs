//! Determinism guarantees of the parallel experiment runner.
//!
//! The contract: for any thread count, every experiment produces results that
//! are bit-identical to the serial reference schedule, and the memoized oracle
//! baselines are exactly the results a direct (uncached) oracle simulation
//! would produce. These tests back the `--threads N` byte-identical-artifacts
//! acceptance criterion at the typed-result level; the CI workflow adds the
//! file-level `diff -r` on top.

use neummu_mmu::MmuConfig;
use neummu_npu::NpuConfig;
use neummu_sim::dense::{DenseSimConfig, DenseSimulator};
use neummu_sim::experiments::{characterization, mmu_cache_study, performance, ExperimentScale};
use neummu_sim::runner::ExperimentRunner;
use neummu_vmem::PageSize;
use neummu_workloads::DenseWorkload;

const SMOKE: ExperimentScale = ExperimentScale::Smoke;

#[test]
fn normalized_sweep_is_identical_across_thread_counts() {
    let serial = ExperimentRunner::new(1);
    let parallel = ExperimentRunner::new(4);
    let a = performance::fig10_prmb_sweep_on(&serial, SMOKE).unwrap();
    let b = performance::fig10_prmb_sweep_on(&parallel, SMOKE).unwrap();
    // PartialEq on the result compares every f64 exactly — bit-identical
    // points, labels and ordering, not just "close enough".
    assert_eq!(a, b);
    assert_eq!(a.points, b.points);
}

#[test]
fn aggregated_experiments_are_identical_across_thread_counts() {
    let serial = ExperimentRunner::new(1);
    let parallel = ExperimentRunner::new(4);
    assert_eq!(
        performance::fig12b_energy_perf_on(&serial, SMOKE).unwrap(),
        performance::fig12b_energy_perf_on(&parallel, SMOKE).unwrap(),
    );
    assert_eq!(
        performance::summary_neummu_on(&serial, SMOKE).unwrap(),
        performance::summary_neummu_on(&parallel, SMOKE).unwrap(),
    );
    assert_eq!(
        characterization::fig06_page_divergence_on(&serial, SMOKE).unwrap(),
        characterization::fig06_page_divergence_on(&parallel, SMOKE).unwrap(),
    );
    assert_eq!(
        mmu_cache_study::run_on(&serial, SMOKE).unwrap(),
        mmu_cache_study::run_on(&parallel, SMOKE).unwrap(),
    );
}

#[test]
fn serving_sweep_is_identical_across_thread_counts() {
    // The open-loop serving family joins the byte-identical-artifacts
    // contract: its per-tenant SLO rows, goodput points and queue-depth
    // timelines are a pure function of the configuration, not the schedule.
    use neummu_sim::experiments::serving;
    let serial = serving::serving_sweep_on(&ExperimentRunner::new(1), SMOKE).unwrap();
    let parallel = serving::serving_sweep_on(&ExperimentRunner::new(4), SMOKE).unwrap();
    assert_eq!(serial, parallel);
    assert_eq!(
        serde_json::to_string_pretty(&serial).unwrap(),
        serde_json::to_string_pretty(&parallel).unwrap(),
        "serving_sweep.json must not depend on the thread count"
    );
    assert_eq!(serial.slo_table().to_csv(), parallel.slo_table().to_csv());
    assert_eq!(
        serial.goodput_table().to_markdown(),
        parallel.goodput_table().to_markdown()
    );
}

#[test]
fn memoized_oracle_equals_direct_oracle_simulation() {
    let runner = ExperimentRunner::new(4);
    let npu = NpuConfig::tpu_like();
    // Warm the cache through a sweep, then compare every memoized baseline
    // against a from-scratch simulation of the same point.
    performance::fig08_baseline_iommu_on(&runner, SMOKE).unwrap();
    for workload_id in SMOKE.workloads() {
        for &batch in &SMOKE.batches() {
            let memoized = runner
                .oracle_point(workload_id, batch, PageSize::Size4K, npu)
                .unwrap();
            let mut config = DenseSimConfig::with_mmu(MmuConfig::oracle());
            config.npu = npu;
            let direct = DenseSimulator::new(config)
                .simulate_workload(&DenseWorkload::new(workload_id).layers(batch))
                .unwrap();
            assert_eq!(*memoized, direct, "{workload_id} b{batch}");
        }
    }
}

#[test]
fn oracle_simulates_once_per_key_within_a_sweep() {
    // Six PRMB configurations over the smoke grid: each (workload, batch,
    // page size) baseline must simulate exactly once; the other five columns
    // hit the cache.
    let runner = ExperimentRunner::new(4);
    performance::fig10_prmb_sweep_on(&runner, SMOKE).unwrap();
    let grid = SMOKE.workloads().len() * SMOKE.batches().len();
    let configs = 6;
    assert_eq!(runner.oracle_cache().simulations() as usize, grid);
    assert_eq!(runner.oracle_cache().len(), grid);
    assert_eq!(
        runner.oracle_cache().hits() as usize,
        grid * (configs - 1),
        "every duplicate baseline request must be served from the cache"
    );
}

#[test]
fn oracle_cache_is_shared_across_experiment_families() {
    // Figure 8 and Figure 6 normalize/measure against the same 4K oracle
    // baselines; on one runner the second family must not re-simulate them.
    let runner = ExperimentRunner::new(2);
    performance::fig08_baseline_iommu_on(&runner, SMOKE).unwrap();
    let sims_after_fig08 = runner.oracle_cache().simulations();
    characterization::fig06_page_divergence_on(&runner, SMOKE).unwrap();
    assert_eq!(runner.oracle_cache().simulations(), sims_after_fig08);
    assert!(runner.oracle_cache().hits() >= sims_after_fig08);
}

#[test]
fn dma_transaction_iterator_matches_the_materialized_vec_path() {
    // PR 3 switched the simulators from `DmaEngine::transactions` (one Vec
    // per tile fetch) to the streaming `transaction_iter`. The two must issue
    // the identical transaction sequence for every fetch shape the tiling
    // planner can produce — including the real fetches of a paper workload.
    use neummu_npu::{DmaEngine, Layer, TilingPlan};

    let npu = NpuConfig::tpu_like();
    let dma = DmaEngine::new(npu.dma);

    // Synthetic edge shapes: empty, sub-transaction, unaligned head/tail.
    for (offset, bytes) in [(0u64, 0u64), (0, 1), (7, 510), (511, 2), (4096, 5 << 20)] {
        let fetch = neummu_npu::TileFetch {
            kind: neummu_npu::TensorKind::Weight,
            offset,
            bytes,
        };
        let streamed: Vec<_> = dma.transaction_iter(&fetch).collect();
        assert_eq!(
            streamed,
            dma.transactions(&fetch),
            "offset {offset} bytes {bytes}"
        );
    }

    // Every fetch of a real layer's tiling plan.
    let layer = Layer::lstm_cell("lstm", 1, 512, 512, 1);
    let plan = TilingPlan::for_layer(&layer, &npu).unwrap();
    let mut fetches = 0;
    for tile in plan.tiles() {
        for fetch in [tile.ia_fetch.as_ref(), tile.w_fetch.as_ref()]
            .into_iter()
            .flatten()
        {
            let streamed: Vec<_> = dma.transaction_iter(fetch).collect();
            assert_eq!(streamed, dma.transactions(fetch));
            assert_eq!(
                dma.transaction_iter(fetch).len() as u64,
                dma.transaction_count(fetch)
            );
            fetches += 1;
        }
    }
    assert!(fetches > 0, "the plan must exercise real fetches");
}

#[test]
fn embedding_lookup_stream_matches_the_materialized_trace() {
    // The gather simulator streams `(table, row)` pairs straight from the
    // seeded generator; the sequence must equal the flattened trace the old
    // materializing path consumed.
    use neummu_workloads::EmbeddingModel;
    for model in [EmbeddingModel::ncf(), EmbeddingModel::dlrm()] {
        let trace = model.generate_lookups(4, 0x4e65_754d_4d55);
        let flattened: Vec<(usize, u64)> = trace
            .indices
            .iter()
            .enumerate()
            .flat_map(|(t, rows)| rows.iter().map(move |&r| (t, r)))
            .collect();
        let streamed: Vec<(usize, u64)> = model.lookup_stream(4, 0x4e65_754d_4d55).collect();
        assert_eq!(streamed, flattened, "{}", model.name());
    }
}

#[test]
fn legacy_serial_entry_points_agree_with_runner_entry_points() {
    // The scale-only signatures are wrappers over a private serial runner;
    // they must produce the same bits as an explicit runner at any width.
    let runner = ExperimentRunner::new(3);
    assert_eq!(
        performance::fig13_tpreg_hit_rate(SMOKE).unwrap(),
        performance::fig13_tpreg_hit_rate_on(&runner, SMOKE).unwrap(),
    );
    assert_eq!(
        performance::sensitivity(SMOKE).unwrap(),
        performance::sensitivity_on(&runner, SMOKE).unwrap(),
    );
}
