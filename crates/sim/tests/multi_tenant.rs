//! Integration tests of the multi-tenant subsystem: tagged-translation
//! semantics end to end, the contention-disabled equivalence guarantee, and
//! byte-level determinism of the experiment family.

use proptest::prelude::*;

use neummu_mmu::MmuConfig;
use neummu_sim::experiments::{multi_tenant as mt_experiment, ExperimentScale};
use neummu_sim::multi_tenant::{MultiTenantConfig, TenantScheduler, TenantSpec};
use neummu_sim::ExperimentRunner;
use neummu_vmem::Asid;
use neummu_workloads::WorkloadId;

const SMOKE: ExperimentScale = ExperimentScale::Smoke;

/// Serializes exactly like `ExperimentArtifacts::json` writes artifacts.
fn artifact_bytes<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("artifact serialization is infallible")
}

#[test]
fn two_identical_tenants_make_identical_progress_under_fair_sharing() {
    // Two tenants running the *same* workload issue the same VAs under
    // different ASIDs. With fair round-robin their streams are symmetric, so
    // their per-tenant counters must agree — any asymmetry would mean one
    // tenant's translations leaked into (or aliased with) the other's.
    let tenants = [
        TenantSpec::new(WorkloadId::Cnn1, 1),
        TenantSpec::new(WorkloadId::Cnn1, 1),
    ];
    let result = TenantScheduler::new(MultiTenantConfig::with_mmu(MmuConfig::neummu()))
        .run(&tenants)
        .unwrap();
    let (a, b) = (&result.stats[0], &result.stats[1]);
    assert_eq!(a.requests, b.requests);
    // Every request is accounted to exactly one source.
    for s in [a, b] {
        assert_eq!(s.tlb_hits + s.merged + s.walks, s.requests);
    }
    // Identical VAs in different ASIDs never alias. If tenant B could hit on
    // tenant A's freshly filled entries (or merge into A's in-flight walks of
    // the same page number), B would stop walking almost entirely — its walk
    // count would collapse and its hit count would explode relative to A's.
    // The streams are only phase-shifted by one scheduling burst, so genuine
    // counters differ by at most a sliver; allow 1% for that phase noise.
    let tolerance = (a.requests / 100).max(64);
    assert!(
        a.tlb_hits.abs_diff(b.tlb_hits) <= tolerance,
        "cross-ASID TLB aliasing: {} vs {}",
        a.tlb_hits,
        b.tlb_hits
    );
    assert!(
        a.walks.abs_diff(b.walks) <= tolerance,
        "asymmetric walks: {} vs {}",
        a.walks,
        b.walks
    );
    assert!(
        a.merged.abs_diff(b.merged) <= tolerance,
        "cross-ASID PRMB merging: {} vs {}",
        a.merged,
        b.merged
    );
    // The second-scheduled twin finishes within one burst's worth of issue
    // slots of the first — fair sharing, no starvation.
    assert!(a.completion_cycle.abs_diff(b.completion_cycle) < result.makespan_cycles / 2);
}

#[test]
fn sweep_artifacts_are_byte_identical_across_thread_counts() {
    let serial = mt_experiment::tenant_sweep_on(&ExperimentRunner::new(1), SMOKE).unwrap();
    let parallel = mt_experiment::tenant_sweep_on(&ExperimentRunner::new(4), SMOKE).unwrap();
    assert_eq!(
        artifact_bytes(&serial),
        artifact_bytes(&parallel),
        "multitenant_sweep.json must not depend on the thread count"
    );
    assert_eq!(serial.to_table().to_csv(), parallel.to_table().to_csv());
    assert_eq!(
        serial.counters_table().to_markdown(),
        parallel.counters_table().to_markdown()
    );
}

#[test]
fn repeated_shared_runs_are_bit_identical() {
    let config = MultiTenantConfig::with_mmu(MmuConfig::neummu());
    let tenants = mt_experiment::tenant_mix(SMOKE, 2);
    let a = TenantScheduler::new(config).run(&tenants).unwrap();
    let b = TenantScheduler::new(config).run(&tenants).unwrap();
    assert_eq!(artifact_bytes(&a), artifact_bytes(&b));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The contention-disabled guarantee, at artifact granularity: for any
    /// scheduling burst and any 2-tenant mix, the interleaved run with
    /// isolation forced on produces per-tenant artifacts byte-identical to
    /// the two tenants' solo runs (modulo the ASID label, which is the
    /// tenant's slot in the mix by construction).
    #[test]
    fn two_tenant_isolated_interleaving_equals_solo_runs(
        burst_choice in 0usize..5,
        first in 0usize..2,
        second in 0usize..2,
    ) {
        let burst = [1u64, 2, 7, 64, 257][burst_choice];
        let pool = [WorkloadId::Cnn1, WorkloadId::Rnn2];
        let tenants = [
            TenantSpec::new(pool[first], 1),
            TenantSpec::new(pool[second], 1),
        ];
        let config = MultiTenantConfig::with_mmu(MmuConfig::neummu())
            .isolated()
            .with_burst(burst);
        let interleaved = TenantScheduler::new(config).run(&tenants).unwrap();
        for (slot, spec) in tenants.iter().enumerate() {
            let solo = TenantScheduler::new(config).run(&[*spec]).unwrap();
            let mut expected = solo.stats[0];
            expected.asid = Asid::new(slot as u16);
            prop_assert_eq!(
                artifact_bytes(&interleaved.stats[slot]),
                artifact_bytes(&expected),
                "tenant {} (burst {})", spec.label(), burst
            );
        }
    }
}
