//! Property-locked invariants of the resilient-translation subsystem.
//!
//! Three guarantees, each over randomized fault mixes (per-kind rates and
//! bursts), mechanism sets (every subset of retry / watchdog / quarantine /
//! retransmit, with and without the circuit breaker) and plan seeds:
//!
//! * **conservation** — no request is lost under any fault mix: at drain
//!   every offered request either completed or was dropped by its bounded
//!   queue, breaker shedding only moves arrivals between `offered` and
//!   `shed` (the generated arrival count is a pure function of the arrival
//!   config, so a breaker run and a breaker-free run partition the same
//!   total), and every injected fault is either detected or hung — never
//!   silently absorbed;
//! * **no deadlock** — every run finishes, and its makespan stays under a
//!   generous closed-form bound built from the worst single-walk cost
//!   (livelock bound + full retry/backoff/retransmit chain), so a walk that
//!   stopped making progress would fail the test rather than spin forever;
//! * **zero-rate identity** — a plan whose every rate is `0.0` produces a
//!   run bit-identical to the no-faults build, whatever the seed and armed
//!   mechanisms: same stats, same timelines, same makespan. This is the
//!   typed-result half of the byte-identical-artifacts acceptance bar.
//!
//! Plus the config-validation regressions: NaN / negative / above-one rates,
//! zero-impossible cycle knobs and invalid breakers are rejected with
//! `SimError::InvalidConfig`, mirroring `ArrivalConfig::validate`.

use proptest::prelude::*;

use neummu_mmu::{DeviceFaultConfig, FaultKind, FaultRate, MmuConfig, ResilienceConfig};
use neummu_sim::serving::{
    derive_seed, ArrivalConfig, ArrivalShape, CircuitBreakerConfig, ServingConfig, ServingResult,
    ServingSimulator, ServingTenantSpec,
};
use neummu_sim::SimError;
use neummu_workloads::WorkloadId;

/// A small heterogeneous population: three tenants, three arrival shapes.
fn population(rate_per_mcycle: f64, horizon: u64, seed: u64) -> Vec<ServingTenantSpec> {
    let shapes = [
        ArrivalShape::Poisson,
        ArrivalShape::Bursty {
            mean_burst_arrivals: 4.0,
            duty_fraction: 0.3,
        },
        ArrivalShape::Diurnal {
            period_cycles: horizon / 2,
            trough_fraction: 0.2,
        },
    ];
    let workloads = [WorkloadId::Cnn1, WorkloadId::Rnn2, WorkloadId::Cnn1];
    (0..3)
        .map(|i| ServingTenantSpec {
            workload: workloads[i],
            batch: 1,
            weight: 1 + i as u64,
            arrivals: ArrivalConfig {
                shape: shapes[i],
                rate_per_mcycle,
                horizon_cycles: horizon,
                seed: derive_seed(seed, i as u64),
            },
        })
        .collect()
}

/// A fast resilience configuration (small cycle knobs so hung walks cost
/// thousands, not hundreds of thousands, of simulated cycles) with the given
/// mechanisms armed.
fn resilience(retry: bool, watchdog: bool, quarantine: bool, retransmit: bool) -> ResilienceConfig {
    let mut r = ResilienceConfig::all_off()
        .with_retry(retry)
        .with_watchdog(watchdog)
        .with_quarantine(quarantine)
        .with_retransmit(retransmit);
    r.max_retries = 2;
    r.backoff_base_cycles = 50;
    r.timeout_cycles = 200;
    r.watchdog_cycles = 300;
    r.quarantine_cooldown_cycles = 1_000;
    r.retransmit_cycles = 100;
    r.livelock_bound_cycles = 5_000;
    r
}

/// The worst possible extra cost of one walk under `r`: it hangs to the
/// livelock bound, or burns the full retry chain (timeout + exponential
/// backoff per attempt), the watchdog, the full retransmit chain and the
/// final walk — summed, not maxed, so the bound is generous.
fn worst_walk_cycles(r: &ResilienceConfig, walk_latency: u64) -> u64 {
    let attempts = u64::from(r.max_retries) + 1;
    let backoff: u64 = (0..=r.max_retries)
        .map(|a| r.backoff_base_cycles << a)
        .sum();
    r.livelock_bound_cycles
        + attempts * (r.timeout_cycles + walk_latency + r.retransmit_cycles)
        + backoff
        + r.watchdog_cycles
        + r.quarantine_cooldown_cycles
}

fn base_config(faults: Option<(DeviceFaultConfig, ResilienceConfig)>) -> ServingConfig {
    let mut config = ServingConfig::with_mmu(MmuConfig::neummu())
        .with_burst(8)
        .with_txns_per_request(8)
        .with_queue_depth(4)
        .with_sample_interval(1024);
    if let Some((device, resilience)) = faults {
        config = config.with_faults(device, resilience);
    }
    config
}

fn run(config: ServingConfig, horizon: u64, arrival_seed: u64) -> ServingResult {
    ServingSimulator::new(config)
        .run(&population(300.0, horizon, arrival_seed))
        .expect("serving run")
}

const HORIZON: u64 = 4_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Conservation and no-deadlock under arbitrary fault mixes and
    /// mechanism sets.
    #[test]
    fn faulted_runs_conserve_requests_and_terminate(
        timeout_rate in 0.0f64..0.3,
        dropped_rate in 0.0f64..0.3,
        transient_rate in 0.0f64..0.3,
        stuck_rate in 0.0f64..0.2,
        burst in 1u32..4,
        plan_seed in any::<u64>(),
        arrival_seed in any::<u64>(),
        retry in any::<bool>(),
        watchdog in any::<bool>(),
        quarantine in any::<bool>(),
        retransmit in any::<bool>(),
        breaker in any::<bool>(),
    ) {
        let device = DeviceFaultConfig::none(plan_seed)
            .with_kind(FaultKind::WalkTimeout, FaultRate::of(timeout_rate))
            .with_kind(FaultKind::DroppedResponse, FaultRate::of(dropped_rate))
            .with_kind(FaultKind::TransientError, FaultRate::of(transient_rate))
            .with_kind(FaultKind::WalkerStuck, FaultRate::bursty(stuck_rate, burst));
        let r = resilience(retry, watchdog, quarantine, retransmit);
        let mut config = base_config(Some((device, r)));
        if breaker {
            config = config.with_breaker(CircuitBreakerConfig {
                sojourn_slo_p99_cycles: 2_000,
                window_requests: 4,
                cooldown_cycles: 1_000,
            });
        }
        let txns = config.txns_per_request;
        // The run returning at all is the first half of the no-deadlock
        // guarantee (a hung retirement would loop forever inside `run`).
        let result = run(config, HORIZON, arrival_seed);

        // Queue conservation at drain, per tenant.
        let mut offered = 0u64;
        let mut shed = 0u64;
        for stats in &result.stats {
            prop_assert_eq!(stats.queue.offered, stats.queue.completed + stats.queue.dropped);
            offered += stats.queue.offered;
            shed += stats.shed;
        }
        // Breaker shedding only splits the generated arrivals: a breaker-free
        // run of the same arrival config offers exactly `offered + shed`.
        let baseline = run(base_config(None), HORIZON, arrival_seed);
        prop_assert_eq!(offered + shed, baseline.offered_requests());

        // Fault accounting: injected faults are detected or hung, never
        // silently absorbed; the recovery histogram covers each recovery.
        let counters = result.fault_counters.as_ref().expect("faulted run keeps counters");
        prop_assert_eq!(counters.total_injected(), counters.total_detected() + counters.total_hung());
        prop_assert!(counters.total_recovered() <= counters.total_detected());
        let histogram_total: u64 = counters.recovery_latency.values().sum();
        prop_assert_eq!(histogram_total, counters.total_recovered());

        // Closed-form makespan bound: arrivals stop at the horizon, so the
        // drain can serialize at most every walk of every offered request
        // behind the worst single-walk cost.
        let walks = (offered + 1) * txns;
        let bound = HORIZON + walks * worst_walk_cycles(&r, 4 * 100) + 100_000;
        prop_assert!(
            result.makespan_cycles <= bound,
            "makespan {} exceeds the no-deadlock bound {}",
            result.makespan_cycles,
            bound
        );
    }

    /// A zero-rate plan is bit-identical to the no-faults build, whatever
    /// the seed and armed mechanisms.
    #[test]
    fn zero_rate_plans_are_bit_identical_to_no_faults(
        plan_seed in any::<u64>(),
        arrival_seed in any::<u64>(),
        retry in any::<bool>(),
        watchdog in any::<bool>(),
        quarantine in any::<bool>(),
        retransmit in any::<bool>(),
    ) {
        let device = DeviceFaultConfig::none(plan_seed);
        let r = resilience(retry, watchdog, quarantine, retransmit);
        let faulted = run(base_config(Some((device, r))), HORIZON, arrival_seed);
        let plain = run(base_config(None), HORIZON, arrival_seed);
        prop_assert_eq!(&faulted.tenants, &plain.tenants);
        prop_assert_eq!(&faulted.stats, &plain.stats);
        prop_assert_eq!(&faulted.timeline, &plain.timeline);
        prop_assert_eq!(faulted.makespan_cycles, plain.makespan_cycles);
        // The only permitted difference: the faulted build carries (empty)
        // counters, the plain build carries none.
        let counters = faulted.fault_counters.expect("zero-rate run keeps counters");
        prop_assert_eq!(counters.total_injected(), 0);
        prop_assert!(plain.fault_counters.is_none());
    }
}

/// Invalid fault and breaker configurations are rejected at `run` with
/// `SimError::InvalidConfig`, one regression per rejection class.
#[test]
fn invalid_fault_configs_are_rejected() {
    let reject = |config: ServingConfig, what: &str| {
        let err = ServingSimulator::new(config)
            .run(&population(300.0, HORIZON, 7))
            .expect_err(&format!("{what} must be rejected"));
        assert!(
            matches!(err, SimError::InvalidConfig { .. }),
            "{what}: wrong error {err:?}"
        );
    };
    let good = ResilienceConfig::all_on();

    // NaN, negative and above-one rates.
    let nan = DeviceFaultConfig::none(1).with_kind(FaultKind::WalkTimeout, FaultRate::of(f64::NAN));
    reject(base_config(Some((nan, good))), "NaN rate");
    let negative =
        DeviceFaultConfig::none(1).with_kind(FaultKind::TransientError, FaultRate::of(-0.1));
    reject(base_config(Some((negative, good))), "negative rate");
    let above_one =
        DeviceFaultConfig::none(1).with_kind(FaultKind::DroppedResponse, FaultRate::of(1.5));
    reject(base_config(Some((above_one, good))), "rate above one");
    // A zero burst can never inject.
    let zero_burst =
        DeviceFaultConfig::none(1).with_kind(FaultKind::WalkerStuck, FaultRate::bursty(0.1, 0));
    reject(base_config(Some((zero_burst, good))), "zero burst");

    // Zero-impossible cycle knobs.
    let device = DeviceFaultConfig::uniform(1, 0.1);
    let mut zero_timeout = good;
    zero_timeout.timeout_cycles = 0;
    reject(base_config(Some((device, zero_timeout))), "zero timeout");
    let mut zero_backoff = good;
    zero_backoff.backoff_base_cycles = 0;
    reject(base_config(Some((device, zero_backoff))), "zero backoff");
    let mut zero_retries = good;
    zero_retries.max_retries = 0;
    reject(base_config(Some((device, zero_retries))), "zero retries");
    let mut low_livelock = good;
    low_livelock.livelock_bound_cycles = good.timeout_cycles;
    reject(
        base_config(Some((device, low_livelock))),
        "livelock bound not above timeout",
    );

    // Invalid breakers.
    for (breaker, what) in [
        (
            CircuitBreakerConfig {
                sojourn_slo_p99_cycles: 0,
                window_requests: 4,
                cooldown_cycles: 100,
            },
            "zero breaker SLO",
        ),
        (
            CircuitBreakerConfig {
                sojourn_slo_p99_cycles: 1_000,
                window_requests: 0,
                cooldown_cycles: 100,
            },
            "zero breaker window",
        ),
        (
            CircuitBreakerConfig {
                sojourn_slo_p99_cycles: 1_000,
                window_requests: 4,
                cooldown_cycles: 0,
            },
            "zero breaker cooldown",
        ),
    ] {
        reject(base_config(None).with_breaker(breaker), what);
    }
}
