//! Property tests of the run-coalesced burst translation path (PR 5).
//!
//! The tentpole guarantee is bit-exactness: driving a DMA transaction stream
//! through `translate_run` + `DramModel::schedule_run` must reproduce the
//! per-transaction `translate` + `schedule_transfer` sequence exactly — same
//! per-request outcomes, same cycle schedules, same engine statistics, same
//! TLB counters — for *any* tile shape, transaction grain, page-size mix,
//! TLB geometry and walker/PRMB budget. These tests throw randomized
//! configurations at both paths and require equality, and separately check
//! that [`neummu_npu::DmaEngine::page_runs`] is an exact partition of
//! [`neummu_npu::DmaEngine::transaction_iter`].

use proptest::collection;
use proptest::prelude::*;

use neummu_mem::dram::{DramConfig, DramModel};
use neummu_mmu::{AddressTranslator, MmuConfig, TranslationEngine, TranslationOutcome};
use neummu_npu::{DmaConfig, DmaEngine, TensorKind, TileFetch};
use neummu_vmem::{MemNode, PageSize, PageTable, PhysFrameNum, VirtAddr};

/// Outcome of one memory phase: everything a simulator observes.
#[derive(Debug, PartialEq)]
struct PhaseResult {
    outcomes: Vec<TranslationOutcome>,
    data_ready: Vec<u64>,
    final_issue_cycle: u64,
    stats: neummu_mmu::TranslationStats,
    tlb_lookups: u64,
    tlb_hits: u64,
    tlb_fills: u64,
    tlb_occupancy: usize,
    dram_busy_until: u64,
    dram_total_bytes: u64,
}

/// Maps every page a fetch list touches, starting from `base`.
fn mapped_table(base: u64, fetches: &[TileFetch], page_size: PageSize) -> PageTable {
    let mut pt = PageTable::new();
    let page_bytes = page_size.bytes();
    let end = fetches.iter().map(TileFetch::end).max().unwrap_or(0);
    let pages = end.div_ceil(page_bytes) + 1;
    for i in 0..pages {
        pt.map(
            VirtAddr::new(base + i * page_bytes),
            page_size,
            PhysFrameNum::new(0x10_0000 + i * (page_bytes / 4096)),
            MemNode::Npu(0),
        )
        .unwrap();
    }
    pt
}

/// The dense simulator's historical per-transaction memory phase.
fn per_transaction_phase(
    mmu: MmuConfig,
    pt: &PageTable,
    base: u64,
    dma: &DmaEngine,
    fetches: &[TileFetch],
    passes: u32,
) -> PhaseResult {
    let mut engine = TranslationEngine::new(mmu);
    let mut dram = DramModel::new(DramConfig::table1());
    let mut outcomes = Vec::new();
    let mut data_ready = Vec::new();
    let mut issue_cycle = 0u64;
    for _ in 0..passes {
        for fetch in fetches {
            for txn in dma.transaction_iter(fetch) {
                let out = engine.translate(pt, VirtAddr::new(base + txn.offset), issue_cycle);
                issue_cycle = out.accept_cycle + 1;
                data_ready.push(dram.schedule_transfer(out.complete_cycle, txn.bytes));
                outcomes.push(out);
            }
        }
    }
    PhaseResult {
        outcomes,
        data_ready,
        final_issue_cycle: issue_cycle,
        stats: *engine.stats(),
        tlb_lookups: engine.tlb().lookups(),
        tlb_hits: engine.tlb().hits(),
        tlb_fills: engine.tlb().fills(),
        tlb_occupancy: engine.tlb().occupancy(),
        dram_busy_until: dram.busy_until(),
        dram_total_bytes: dram.total_bytes(),
    }
}

/// The run-coalesced memory phase, reconstructing per-transaction results
/// from the compact `RunOutcome`s.
fn run_coalesced_phase(
    mmu: MmuConfig,
    pt: &PageTable,
    base: u64,
    dma: &DmaEngine,
    fetches: &[TileFetch],
    passes: u32,
) -> PhaseResult {
    let mut engine = TranslationEngine::new(mmu);
    let mut dram = DramModel::new(DramConfig::table1());
    let mut outcomes = Vec::new();
    let mut data_ready = Vec::new();
    let mut issue_cycle = 0u64;
    let page_bytes = mmu.page_size.bytes();
    for _ in 0..passes {
        for fetch in fetches {
            for full_run in dma.page_runs(fetch, base, page_bytes) {
                let mut run = full_run;
                loop {
                    let va = VirtAddr::new(base + run.first.offset);
                    let out = engine.translate_run(pt, va, run.txn_count, issue_cycle);
                    issue_cycle = out.last_accept() + 1;
                    for j in 0..out.consumed {
                        outcomes.push(out.outcome(j));
                    }
                    let scheduled = run.prefix(out.consumed);
                    let last_ready = dram.schedule_run(
                        out.first.complete_cycle,
                        out.complete_stride,
                        scheduled.txn_count,
                        scheduled.first.bytes,
                        scheduled.interior_txn_bytes(),
                        scheduled.txn_len(scheduled.txn_count - 1),
                    );
                    // `schedule_run` returns the run's last arrival; all
                    // arrivals a simulator folds into a max are bounded by
                    // it, so recording it per consumed chunk reproduces the
                    // observable schedule.
                    data_ready.push(last_ready);
                    if out.consumed == run.txn_count {
                        break;
                    }
                    run = run.suffix(out.consumed);
                }
            }
        }
    }
    PhaseResult {
        outcomes,
        data_ready,
        final_issue_cycle: issue_cycle,
        stats: *engine.stats(),
        tlb_lookups: engine.tlb().lookups(),
        tlb_hits: engine.tlb().hits(),
        tlb_fills: engine.tlb().fills(),
        tlb_occupancy: engine.tlb().occupancy(),
        dram_busy_until: dram.busy_until(),
        dram_total_bytes: dram.total_bytes(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole property: for random tile shapes, transaction grains
    /// (including page-straddling ones), page-size mixes and TLB/walker/PRMB
    /// geometries, the run-coalesced path agrees with the per-transaction
    /// path on every outcome, every cycle, every statistic.
    #[test]
    fn run_path_agrees_with_per_transaction_path(
        shapes in collection::vec((0u64..16384, 1u64..200_000), 1..4),
        txn_choice in 0usize..4,
        large_pages in any::<bool>(),
        tlb_choice in 0usize..3,
        ways_choice in 0usize..3,
        ptw_choice in 0usize..3,
        prmb_choice in 0usize..3,
        tpreg in any::<bool>(),
        passes in 1u32..3,
    ) {
        let txn_bytes = [64u64, 512, 777, 4096][txn_choice];
        let page_size = if large_pages { PageSize::Size2M } else { PageSize::Size4K };
        let mut mmu = MmuConfig::baseline_iommu()
            .with_tlb_entries([4usize, 64, 2048][tlb_choice])
            .with_ptws([1usize, 8, 128][ptw_choice])
            .with_prmb_slots([0usize, 1, 32][prmb_choice])
            .with_tpreg(tpreg)
            .with_page_size(page_size);
        mmu.tlb_ways = [1usize, 2, 8][ways_choice];
        let fetches: Vec<TileFetch> = shapes
            .iter()
            .map(|&(offset, bytes)| TileFetch { kind: TensorKind::Weight, offset, bytes })
            .collect();
        let base = 0x10_0000_0000u64;
        let pt = mapped_table(base, &fetches, page_size);
        let dma = DmaEngine::new(DmaConfig { max_transaction_bytes: txn_bytes, translations_per_cycle: 1 });
        let reference = per_transaction_phase(mmu, &pt, base, &dma, &fetches, passes);
        let coalesced = run_coalesced_phase(mmu, &pt, base, &dma, &fetches, passes);
        prop_assert_eq!(&reference.outcomes, &coalesced.outcomes);
        prop_assert_eq!(reference.final_issue_cycle, coalesced.final_issue_cycle);
        prop_assert_eq!(&reference.stats, &coalesced.stats);
        prop_assert_eq!(reference.tlb_lookups, coalesced.tlb_lookups);
        prop_assert_eq!(reference.tlb_hits, coalesced.tlb_hits);
        prop_assert_eq!(reference.tlb_fills, coalesced.tlb_fills);
        prop_assert_eq!(reference.tlb_occupancy, coalesced.tlb_occupancy);
        prop_assert_eq!(reference.dram_busy_until, coalesced.dram_busy_until);
        prop_assert_eq!(reference.dram_total_bytes, coalesced.dram_total_bytes);
        // Per-chunk last-arrivals are a subsequence of the per-transaction
        // arrivals, and both schedules end at the same final arrival.
        prop_assert_eq!(reference.data_ready.last(), coalesced.data_ready.last());
        let mut remaining = reference.data_ready.iter();
        for arrival in &coalesced.data_ready {
            prop_assert!(
                remaining.any(|r| r == arrival),
                "chunk arrival {} missing from the per-transaction schedule",
                arrival
            );
        }
    }

    /// `page_runs` is an exact partition of `transaction_iter`: rebuilding
    /// every transaction of every run reproduces the stream, runs are
    /// maximal (consecutive runs never share a page), and every transaction
    /// of a run starts on the run's page.
    #[test]
    fn page_runs_exactly_partition_the_transaction_stream(
        shapes in collection::vec((0u64..16384, 1u64..200_000), 1..4),
        txn_choice in 0usize..4,
        large_pages in any::<bool>(),
        base_choice in 0usize..3,
    ) {
        let txn_bytes = [64u64, 512, 777, 4096][txn_choice];
        let page_bytes = if large_pages { 2u64 << 20 } else { 4096 };
        let base = [0u64, 0x10_0000_0000, 0x7fff_f000][base_choice];
        let dma = DmaEngine::new(DmaConfig { max_transaction_bytes: txn_bytes, translations_per_cycle: 1 });
        for &(offset, bytes) in &shapes {
            let fetch = TileFetch { kind: TensorKind::InputActivation, offset, bytes };
            let reference: Vec<_> = dma.transaction_iter(&fetch).collect();
            let mut rebuilt = Vec::new();
            let mut previous_page = None;
            for run in dma.page_runs(&fetch, base, page_bytes) {
                prop_assert!(run.txn_count >= 1);
                prop_assert_ne!(previous_page, Some(run.page), "runs must be maximal");
                prop_assert_eq!(run.bytes, (0..run.txn_count).map(|i| run.txn_len(i)).sum::<u64>());
                for i in 0..run.txn_count {
                    let txn = run.txn(i);
                    prop_assert_eq!((base + txn.offset) / page_bytes, run.page);
                    rebuilt.push(txn);
                }
                previous_page = Some(run.page);
            }
            prop_assert_eq!(&rebuilt, &reference);
        }
    }
}
