//! Property-locked invariants of the open-loop serving subsystem.
//!
//! Three layers of guarantees, each over randomized configurations:
//!
//! * **request accounting** — for every policy, overflow mode and load, no
//!   request is lost, duplicated or served out of order within its tenant,
//!   and the queue conservation law holds at drain
//!   (`offered == completed + dropped`, nothing in flight);
//! * **translation accounting** — every DMA transaction a request issues is
//!   classified into exactly one source (`requests == hits + merges + walks`);
//! * **policy semantics** — weighted-fair shares converge to the weight
//!   vector under saturation;
//!
//! plus the arrival-generator properties the SLO numbers depend on:
//! non-decreasing timestamps inside the horizon, seed-stable sequences, and
//! an empirical rate near the configured mean.

use proptest::prelude::*;

use neummu_mmu::MmuConfig;
use neummu_sim::serving::{
    derive_seed, ArrivalConfig, ArrivalShape, OverflowPolicy, ServingConfig, ServingPolicy,
    ServingResult, ServingSimulator, ServingTenantSpec,
};
use neummu_workloads::WorkloadId;

const POLICIES: [ServingPolicy; 4] = [
    ServingPolicy::RoundRobin,
    ServingPolicy::WeightedFair,
    ServingPolicy::BurstQuantum,
    ServingPolicy::TlbAware {
        occupancy_cap_pct: 25,
    },
];

/// A small but heterogeneous tenant population: three tenants, three arrival
/// shapes, distinct seeds.
fn population(rate_per_mcycle: f64, horizon: u64, seed: u64) -> Vec<ServingTenantSpec> {
    let shapes = [
        ArrivalShape::Poisson,
        ArrivalShape::Bursty {
            mean_burst_arrivals: 4.0,
            duty_fraction: 0.3,
        },
        ArrivalShape::Diurnal {
            period_cycles: horizon / 2,
            trough_fraction: 0.2,
        },
    ];
    let workloads = [WorkloadId::Cnn1, WorkloadId::Rnn2, WorkloadId::Cnn1];
    (0..3)
        .map(|i| ServingTenantSpec {
            workload: workloads[i],
            batch: 1,
            weight: 1 + i as u64,
            arrivals: ArrivalConfig {
                shape: shapes[i],
                rate_per_mcycle,
                horizon_cycles: horizon,
                seed: derive_seed(seed, i as u64),
            },
        })
        .collect()
}

/// Asserts the full per-tenant accounting contract on a finished run.
fn assert_accounting(result: &ServingResult, overflow: OverflowPolicy, label: &str) {
    for (spec, stats) in result.tenants.iter().zip(&result.stats) {
        let q = stats.queue;
        // Conservation at drain: the run only ends when every queue is empty
        // and nothing is in service, so every offered request either
        // completed or was shed.
        assert_eq!(
            q.offered,
            q.completed + q.dropped,
            "{label}/{}: drain conservation",
            spec.label()
        );
        assert_eq!(
            q.admitted,
            q.completed,
            "{label}/{}: every admitted request completes",
            spec.label()
        );
        if overflow == OverflowPolicy::Defer {
            assert_eq!(q.dropped, 0, "{label}: defer never sheds");
        }
        // No request lost, duplicated or reordered: completion order is
        // exactly one strictly increasing pass over a subset of the arrival
        // sequence numbers (FIFO within the tenant), with as many entries as
        // completions.
        assert_eq!(stats.completion_order.len() as u64, q.completed);
        for pair in stats.completion_order.windows(2) {
            assert!(
                pair[0] < pair[1],
                "{label}/{}: reordered or duplicated completion {pair:?}",
                spec.label()
            );
        }
        if let Some(&last) = stats.completion_order.last() {
            assert!(
                last < q.offered,
                "{label}: completed a request never offered"
            );
        }
        // Under Defer nothing is shed, so service must cover the whole
        // arrival sequence 0..offered.
        if overflow == OverflowPolicy::Defer {
            assert_eq!(stats.completion_order.len() as u64, q.offered);
        }
        // Every transaction is classified into exactly one source.
        let t = stats.translation;
        assert_eq!(
            t.tlb_hits + t.merged + t.walks,
            t.requests,
            "{label}/{}: translation source accounting",
            spec.label()
        );
        // Latency histograms carry one observation per completion.
        assert_eq!(stats.sojourn.total(), q.completed);
        assert_eq!(stats.stall.total(), q.completed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For every policy × overflow mode and a randomized load/seed, the
    /// serving loop neither loses, duplicates nor reorders requests, and the
    /// queue and translation conservation laws hold at drain.
    #[test]
    fn no_policy_loses_duplicates_or_reorders_requests(
        seed in 0u64..1 << 48,
        load_pct in 40u64..220,
        overflow_defer in any::<bool>(),
    ) {
        let overflow = if overflow_defer {
            OverflowPolicy::Defer
        } else {
            OverflowPolicy::Drop
        };
        let horizon = 10_000u64;
        let txns_per_request = 16u64;
        // Split the load factor across 3 tenants.
        let rate = load_pct as f64 / 100.0 * 1e6 / (3.0 * txns_per_request as f64);
        for policy in POLICIES {
            let config = ServingConfig::with_mmu(MmuConfig::neummu())
                .with_policy(policy)
                .with_burst(8)
                .with_txns_per_request(txns_per_request)
                .with_queue_depth(4)
                .with_overflow(overflow)
                .with_sample_interval(2048);
            let result = ServingSimulator::new(config)
                .run(&population(rate, horizon, seed))
                .unwrap();
            prop_assert!(result.offered_requests() > 0, "load produced no arrivals");
            assert_accounting(&result, overflow, policy.label());
        }
    }

    /// Under saturation (deferring queues, overload), weighted-fair service
    /// shares converge to the weight vector: two identical tenants with
    /// weights `w0:w1` complete transactions in that ratio.
    #[test]
    fn wfq_shares_converge_to_weights_under_saturation(
        w0 in 1u64..=4,
        w1 in 1u64..=4,
        seed in 0u64..1 << 48,
    ) {
        let horizon = 12_000u64;
        let txns_per_request = 16u64;
        // 3× overload keeps both queues backlogged for the whole run.
        let rate = 3.0 * 1e6 / (2.0 * txns_per_request as f64);
        let tenants: Vec<ServingTenantSpec> = [w0, w1]
            .iter()
            .enumerate()
            .map(|(i, &weight)| ServingTenantSpec {
                workload: WorkloadId::Cnn1,
                batch: 1,
                weight,
                arrivals: ArrivalConfig::poisson(rate, horizon, derive_seed(seed, i as u64)),
            })
            .collect();
        let config = ServingConfig::with_mmu(MmuConfig::neummu())
            .with_policy(ServingPolicy::WeightedFair)
            .with_burst(8)
            .with_txns_per_request(txns_per_request)
            .with_queue_depth(4)
            .with_overflow(OverflowPolicy::Defer)
            .with_sample_interval(4096);
        let result = ServingSimulator::new(config).run(&tenants).unwrap();
        assert_accounting(&result, OverflowPolicy::Defer, "wfq-saturation");
        // Defer mode eventually serves *everything*, so total transaction
        // counts equalize at drain; the weighted shares show up in *when*
        // each tenant drains. The strictly heavier tenant receives the larger
        // grant share for as long as both are backlogged, so it finishes no
        // later than the lighter one.
        if w0 > w1 {
            prop_assert!(
                result.stats[0].translation.completion_cycle
                    <= result.stats[1].translation.completion_cycle,
                "weight {w0} tenant drained after weight {w1} tenant"
            );
        }
        if w1 > w0 {
            prop_assert!(
                result.stats[1].translation.completion_cycle
                    <= result.stats[0].translation.completion_cycle,
                "weight {w1} tenant drained after weight {w0} tenant"
            );
        }
        // (The tight 1:3-within-10% share assertion lives in the
        // deterministic `wfq_grants_follow_weights_while_saturated` test,
        // where Drop overflow keeps the saturated window the whole run.)
    }

    /// Arrival sequences are non-decreasing, stay inside the horizon, are a
    /// pure function of the seed, and hit the configured mean rate within
    /// tolerance (for every shape).
    #[test]
    fn arrival_generators_are_ordered_seeded_and_calibrated(
        seed in any::<u64>(),
        shape_choice in 0usize..3,
    ) {
        let horizon = 4_000_000u64;
        let rate = 400.0; // 400 req/Mcycle → ~1600 arrivals: tight-enough law of large numbers.
        let shape = [
            ArrivalShape::Poisson,
            ArrivalShape::Bursty { mean_burst_arrivals: 6.0, duty_fraction: 0.4 },
            ArrivalShape::Diurnal { period_cycles: horizon / 4, trough_fraction: 0.5 },
        ][shape_choice];
        let config = ArrivalConfig { shape, rate_per_mcycle: rate, horizon_cycles: horizon, seed };
        let arrivals = config.generate().unwrap();
        let again = config.generate().unwrap();
        prop_assert_eq!(&arrivals, &again, "same seed, same sequence");
        for pair in arrivals.windows(2) {
            prop_assert!(pair[0] <= pair[1], "timestamps must be non-decreasing");
        }
        if let Some(&last) = arrivals.last() {
            prop_assert!(last < horizon);
        }
        let expected = rate * horizon as f64 / 1e6;
        let observed = arrivals.len() as f64;
        prop_assert!(
            (observed - expected).abs() / expected < 0.25,
            "{}: expected ~{expected} arrivals, generated {observed}",
            shape.label()
        );
    }
}

/// The WFQ share property asserted deterministically and tightly: a 1:3
/// weight split over a long saturated window serves transactions 1:3 within
/// 10% — the convergence claim of the policy docs, on the real simulator
/// (not just the [`PolicyState`] unit test).
///
/// Uses `Drop` overflow so the excess load is shed rather than deferred:
/// while both queues stay saturated the engine's grants follow the weights.
///
/// [`PolicyState`]: neummu_sim::serving::PolicyState
#[test]
fn wfq_grants_follow_weights_while_saturated() {
    let horizon = 40_000u64;
    let txns_per_request = 16u64;
    let rate = 4.0 * 1e6 / (2.0 * txns_per_request as f64);
    let tenants: Vec<ServingTenantSpec> = [1u64, 3]
        .iter()
        .enumerate()
        .map(|(i, &weight)| ServingTenantSpec {
            workload: WorkloadId::Cnn1,
            batch: 1,
            weight,
            arrivals: ArrivalConfig::poisson(rate, horizon, derive_seed(7, i as u64)),
        })
        .collect();
    let config = ServingConfig::with_mmu(MmuConfig::neummu())
        .with_policy(ServingPolicy::WeightedFair)
        .with_burst(8)
        .with_txns_per_request(txns_per_request)
        .with_queue_depth(8)
        .with_overflow(OverflowPolicy::Drop)
        .with_sample_interval(8192);
    let result = ServingSimulator::new(config).run(&tenants).unwrap();
    assert_accounting(&result, OverflowPolicy::Drop, "wfq-drop-saturation");
    // Massive overload with a bounded dropping queue: both tenants are
    // backlogged essentially always, so grants — and therefore completed
    // transactions — split 1:3.
    let served: Vec<f64> = result
        .stats
        .iter()
        .map(|s| s.translation.requests as f64)
        .collect();
    let share = served[1] / (served[0] + served[1]);
    assert!(
        (share - 0.75).abs() < 0.075,
        "weight-3 tenant served {share:.3} of transactions, expected ~0.75"
    );
}

/// Identical seeds give identical serving runs, different seeds give
/// different arrival sequences (decorrelated lanes).
#[test]
fn serving_runs_are_seed_deterministic() {
    let config = ServingConfig::with_mmu(MmuConfig::neummu())
        .with_burst(16)
        .with_txns_per_request(32)
        .with_queue_depth(8)
        .with_sample_interval(4096);
    let rate = 1.2 * 1e6 / (3.0 * 32.0);
    let tenants = population(rate, 20_000, 0xA11CE);
    let a = ServingSimulator::new(config.clone()).run(&tenants).unwrap();
    let b = ServingSimulator::new(config).run(&tenants).unwrap();
    assert_eq!(a, b, "same config and seeds must be bit-identical");
    let other = population(rate, 20_000, 0xB0B);
    assert_ne!(
        tenants[0].arrivals.generate().unwrap(),
        other[0].arrivals.generate().unwrap(),
        "different base seeds must decorrelate arrivals"
    );
}
