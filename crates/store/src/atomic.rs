//! The temp + fsync + atomic-rename write primitive.
//!
//! POSIX `rename(2)` within one directory is atomic: observers see either
//! the old file (or no file) or the complete new file, never a mixture. By
//! writing into a uniquely named temp file in the *same* directory, fsyncing
//! it, and renaming it over the destination, a crash at any instant leaves
//! either the previous state or the fully written new file — plus possibly a
//! stale temp file, which [`clean_stale_temps`] removes on the next run and
//! which no reader ever opens.
//!
//! Every artifact the experiments binary writes (`.json`/`.csv`/`.md`) and
//! every store slot goes through this path, so a mid-write SIGKILL can never
//! leave a truncated artifact on disk.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Marker embedded in temp file names. Cleanup matches on it, and the
/// process id suffix keeps two concurrent writers (or a writer racing a
/// crashed predecessor's leftovers) from colliding.
pub const TMP_MARKER: &str = ".neummu-tmp";

/// Builds the temp path next to `path` (same directory, so the rename never
/// crosses a filesystem boundary).
pub(crate) fn temp_path_for(path: &Path) -> io::Result<std::path::PathBuf> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut name = file_name.to_os_string();
    name.push(TMP_MARKER);
    name.push(std::process::id().to_string());
    Ok(path.with_file_name(name))
}

/// Opens the parent directory and fsyncs it so the rename itself is durable.
/// Best-effort: directory fsync is a Linux-ism and failing to sync the
/// directory only weakens durability, never atomicity, so errors are
/// swallowed.
pub(crate) fn sync_dir_of(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// `fsync`, rename over the destination, directory fsync.
///
/// # Errors
///
/// Any I/O error from creating, writing, syncing or renaming the temp file.
/// On error the destination is untouched (the temp file may remain; it is
/// ignored by readers and removed by [`clean_stale_temps`]).
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let tmp = temp_path_for(path)?;
    let result = (|| {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        fs::remove_file(&tmp).ok();
    } else {
        sync_dir_of(path);
    }
    result
}

/// Removes every leftover temp file (`*.neummu-tmp*`) in `dir` — the debris
/// of a crashed previous run. Returns how many were removed. Non-recursive:
/// both the store and the artifact directory are flat.
///
/// # Errors
///
/// Returns the error of reading the directory; failure to remove an
/// individual leftover is ignored (the next run retries).
pub fn clean_stale_temps(dir: impl AsRef<Path>) -> io::Result<u64> {
    let mut removed = 0;
    for entry in fs::read_dir(dir.as_ref())? {
        let entry = entry?;
        let name = entry.file_name();
        if name.to_string_lossy().contains(TMP_MARKER) && fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("neummu_store_atomic_{tag}_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_land_complete_and_replace_previous_content() {
        let dir = temp_dir("write");
        let path = dir.join("artifact.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second-longer").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second-longer");
        // No temp debris after successful writes.
        assert_eq!(clean_stale_temps(&dir).unwrap(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_temps_are_cleaned_but_real_files_survive() {
        let dir = temp_dir("clean");
        fs::write(dir.join(format!("slot.bin{TMP_MARKER}999")), b"torn").unwrap();
        fs::write(dir.join("slot.bin"), b"committed").unwrap();
        assert_eq!(clean_stale_temps(&dir).unwrap(), 1);
        assert_eq!(fs::read(dir.join("slot.bin")).unwrap(), b"committed");
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn directoryless_path_is_an_input_error() {
        assert!(write_atomic(Path::new("/"), b"x").is_err());
    }
}
