//! A minimal length-prefixed binary codec.
//!
//! The vendored `serde` stand-in can serialize but not deserialize, so every
//! payload that must round-trip through the store (oracle baselines,
//! artifact manifests) is encoded with this explicit little-endian codec
//! instead. The format is positional: the decoder must read fields in
//! exactly the order the encoder wrote them, and a payload-schema change
//! must bump the namespace prefix of the store key (see the `persist`
//! module of `neummu_sim`), so a stale-schema slot simply misses and is
//! recomputed.

use std::fmt;

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The byte stream ended before the field being read.
    Truncated,
    /// A field held a value the schema does not allow (bad enum tag,
    /// non-UTF-8 string, oversized length).
    Invalid(&'static str),
    /// Decoding finished with unread bytes left over.
    TrailingBytes,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "payload truncated"),
            Self::Invalid(what) => write!(f, "invalid field: {what}"),
            Self::TrailingBytes => write!(f, "trailing bytes after the last field"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends little-endian fields to a growable byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, value: bool) {
        self.buf.push(u8::from(value));
    }

    /// Writes a `u16`.
    pub fn u16(&mut self, value: u16) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes a `u32`.
    pub fn u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes an `f64` via its exact bit pattern, so round-trips are
    /// bit-identical (NaN payloads included).
    pub fn f64(&mut self, value: f64) {
        self.u64(value.to_bits());
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, value: &[u8]) {
        self.u64(value.len() as u64);
        self.buf.extend_from_slice(value);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, value: &str) {
        self.bytes(value.as_bytes());
    }
}

/// Reads fields back in the order [`ByteWriter`] wrote them.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the first byte of `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(len).ok_or(CodecError::Truncated)?;
        if end > self.bytes.len() {
            return Err(CodecError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the stream is exhausted.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool` (rejecting anything but 0 or 1).
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] or [`CodecError::Invalid`].
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool out of range")),
        }
    }

    /// Reads a `u16`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the stream is exhausted.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        let raw = self.take(2)?;
        Ok(u16::from_le_bytes([raw[0], raw[1]]))
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the stream is exhausted.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let raw = self.take(4)?;
        Ok(u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the stream is exhausted.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let raw = self.take(8)?;
        let mut le = [0u8; 8];
        le.copy_from_slice(raw);
        Ok(u64::from_le_bytes(le))
    }

    /// Reads an `f64` from its bit pattern.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the stream is exhausted.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the prefix or body outruns the stream.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| CodecError::Invalid("length out of range"))?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] or [`CodecError::Invalid`] on non-UTF-8.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let raw = self.bytes()?;
        std::str::from_utf8(raw)
            .map(str::to_string)
            .map_err(|_| CodecError::Invalid("string is not UTF-8"))
    }

    /// Number of unread bytes.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Asserts the whole stream was consumed — every decoder's last call, so
    /// a slot holding more data than the schema expects is rejected instead
    /// of silently half-read.
    ///
    /// # Errors
    ///
    /// [`CodecError::TrailingBytes`] if bytes remain.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_every_field_kind() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.bool(true);
        w.u16(65_535);
        w.u32(123_456);
        w.u64(u64::MAX - 1);
        w.f64(-0.125);
        w.f64(f64::NAN);
        w.str("hello/слот");
        w.bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 65_535);
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.125f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.str().unwrap(), "hello/слот");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let mut w = ByteWriter::new();
        w.u64(42);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..7]);
        assert_eq!(r.u64(), Err(CodecError::Truncated));

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u32().unwrap(), 42);
        assert_eq!(r.finish(), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_invalid() {
        let mut r = ByteReader::new(&[2]);
        assert!(matches!(r.bool(), Err(CodecError::Invalid(_))));
        let mut w = ByteWriter::new();
        w.bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        assert!(matches!(
            ByteReader::new(&bytes).str(),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn string_length_prefix_cannot_outrun_the_stream() {
        let mut w = ByteWriter::new();
        w.u64(1 << 40); // a length prefix far past the end
        let bytes = w.into_bytes();
        assert_eq!(ByteReader::new(&bytes).bytes(), Err(CodecError::Truncated));
    }
}
