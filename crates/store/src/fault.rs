//! Deterministic fault injection for the slot commit protocol.
//!
//! The store's crash-safety claim is only as good as the tests that attack
//! it. A [`FaultPlan`] arms an *injected crash* at one labeled step of one
//! `put` call (by put index), optionally tearing the write at a chosen byte.
//! When the armed step is reached, the store performs exactly the side
//! effects a real crash at that instant would leave on disk — a missing
//! temp file, a torn temp file, an unrenamed temp file, or a committed slot
//! with the caller's follow-up (journaling) never performed — and then
//! returns [`StoreError::InjectedCrash`](crate::StoreError::InjectedCrash)
//! instead of continuing.
//!
//! Plans are pure data derived from explicit coordinates or from a seed via
//! a splitmix64 generator: no wall clock, no environment, no `RandomState`,
//! so a failing injection scenario replays bit-identically from its seed.

use std::sync::atomic::{AtomicU64, Ordering};

/// The labeled steps of the slot commit protocol, in execution order.
///
/// `Pre*` names mean "crash *before* this action happens".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CommitStep {
    /// Before anything touches the filesystem: no temp file exists.
    PreWrite,
    /// In the middle of writing the temp file: a torn temp file of
    /// [`FaultPoint::torn_at`] bytes is left behind.
    MidWrite,
    /// After the temp file is fully written and fsynced, before the atomic
    /// rename: the final slot is still absent (or still holds its previous
    /// committed value).
    PreRename,
    /// After the rename — the commit point — but before the caller performs
    /// any follow-up such as journaling the surrounding experiment family.
    /// The slot itself is durable.
    PostRenamePreJournal,
}

impl CommitStep {
    /// Every labeled step, in execution order. Tests iterate this to prove
    /// each recovery path, so a new step added here is automatically part of
    /// the exhaustive matrix.
    pub const ALL: [CommitStep; 4] = [
        CommitStep::PreWrite,
        CommitStep::MidWrite,
        CommitStep::PreRename,
        CommitStep::PostRenamePreJournal,
    ];

    /// Stable label (used in error messages and test diagnostics).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::PreWrite => "pre-write",
            Self::MidWrite => "mid-write",
            Self::PreRename => "pre-rename",
            Self::PostRenamePreJournal => "post-rename-pre-journal",
        }
    }
}

/// Where an armed plan strikes: the `put_index`-th `put` call (0-based,
/// counted per store instance), at `step`, tearing the temp file after
/// `torn_at` bytes when the step is [`CommitStep::MidWrite`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPoint {
    /// 0-based index of the victim `put` call.
    pub put_index: u64,
    /// The commit step to crash at.
    pub step: CommitStep,
    /// Bytes of the slot file written before the tear (clamped to the slot
    /// length; only meaningful for [`CommitStep::MidWrite`]).
    pub torn_at: usize,
}

/// A deterministic crash schedule for one [`Store`](crate::Store) instance.
///
/// The default plan is disarmed and injects nothing — the production
/// configuration.
#[derive(Debug, Default)]
pub struct FaultPlan {
    point: Option<FaultPoint>,
    puts_started: AtomicU64,
}

impl FaultPlan {
    /// The disarmed plan: never injects.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Arms a crash at an explicit coordinate.
    #[must_use]
    pub fn crash_at(point: FaultPoint) -> Self {
        FaultPlan {
            point: Some(point),
            puts_started: AtomicU64::new(0),
        }
    }

    /// Derives a crash coordinate from a seed: the victim put index is drawn
    /// from `0..puts_hint`, the step uniformly from [`CommitStep::ALL`], and
    /// the tear offset from `0..=4096`. Same seed, same plan — a failing
    /// scenario replays exactly.
    #[must_use]
    pub fn from_seed(seed: u64, puts_hint: u64) -> Self {
        let mut state = seed;
        let mut next = move || -> u64 {
            // splitmix64: tiny, deterministic, statistically fine for
            // picking victims.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let put_index = next() % puts_hint.max(1);
        let step = CommitStep::ALL[(next() % CommitStep::ALL.len() as u64) as usize];
        let torn_at = (next() % 4097) as usize;
        Self::crash_at(FaultPoint {
            put_index,
            step,
            torn_at,
        })
    }

    /// The armed coordinate, if any.
    #[must_use]
    pub fn point(&self) -> Option<FaultPoint> {
        self.point
    }

    /// Called by the store at the start of each `put`; returns that put's
    /// 0-based index.
    pub(crate) fn begin_put(&self) -> u64 {
        self.puts_started.fetch_add(1, Ordering::Relaxed)
    }

    /// True if the plan strikes the given put at the given step.
    pub(crate) fn strikes(&self, put_index: u64, step: CommitStep) -> bool {
        self.point
            .is_some_and(|p| p.put_index == put_index && p.step == step)
    }

    /// The tear offset for a `MidWrite` strike on the given put.
    pub(crate) fn torn_at(&self, put_index: u64) -> Option<usize> {
        self.point
            .filter(|p| p.put_index == put_index && p.step == CommitStep::MidWrite)
            .map(|p| p.torn_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plan_never_strikes() {
        let plan = FaultPlan::none();
        for put in 0..4 {
            let index = plan.begin_put();
            assert_eq!(index, put);
            for step in CommitStep::ALL {
                assert!(!plan.strikes(index, step));
            }
            assert_eq!(plan.torn_at(index), None);
        }
    }

    #[test]
    fn armed_plan_strikes_exactly_its_coordinate() {
        let plan = FaultPlan::crash_at(FaultPoint {
            put_index: 2,
            step: CommitStep::PreRename,
            torn_at: 0,
        });
        assert!(!plan.strikes(1, CommitStep::PreRename));
        assert!(!plan.strikes(2, CommitStep::PreWrite));
        assert!(plan.strikes(2, CommitStep::PreRename));
        assert_eq!(plan.torn_at(2), None); // not a MidWrite point
    }

    #[test]
    fn seeded_plans_are_deterministic_and_cover_all_steps() {
        let a = FaultPlan::from_seed(42, 10).point().unwrap();
        let b = FaultPlan::from_seed(42, 10).point().unwrap();
        assert_eq!(a, b);
        assert!(a.put_index < 10);
        // Across seeds, every step is eventually drawn.
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..64 {
            seen.insert(FaultPlan::from_seed(seed, 8).point().unwrap().step);
        }
        assert_eq!(seen.len(), CommitStep::ALL.len());
    }

    #[test]
    fn step_labels_are_stable() {
        let labels: Vec<_> = CommitStep::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            [
                "pre-write",
                "mid-write",
                "pre-rename",
                "post-rename-pre-journal"
            ]
        );
    }
}
