//! Crash-safe persistent storage for the experiment runner.
//!
//! Overnight full-scale sweeps should resume bit-identically after an
//! interruption instead of recomputing from scratch. This crate provides the
//! persistence layer that makes that possible, in the style of
//! persistent-memory programming models (idempotent per-key commit slots
//! whose commit point survives a crash):
//!
//! * [`Store`] — a directory of per-key **slots** holding opaque payload
//!   bytes (serialized oracle baselines, finished-artifact manifests). A slot
//!   is committed with a write-to-temp / fsync / atomic-rename protocol, so
//!   at every instant it is either *absent*, *fully committed*, or
//!   *detectably torn*. Torn, corrupt or stale-version slots are deleted and
//!   recomputed, never trusted: a damaged store never fails a run, it only
//!   costs recompute.
//! * [`slot`] — the checksummed, versioned on-disk slot format (magic +
//!   version + lengths + CRC-32 + the full key, so a hash-collision or
//!   stale slot is detected by key comparison, not trusted by file name).
//! * [`atomic`] — the temp + fsync + rename primitive on its own, used for
//!   every experiment artifact write so a crash can never leave a truncated
//!   `.json`/`.csv`/`.md` on disk.
//! * [`fault`] — the deterministic, seed-driven [`FaultPlan`] that can kill
//!   the commit protocol at every labeled [`CommitStep`] (and tear a write at
//!   a chosen byte), so every recovery path is exercised by tests instead of
//!   trusted. In the spirit of CounterPoint, the "no crash, no torn write"
//!   assumption is refuted mechanically, not assumed.
//! * [`codec`] — the tiny length-prefixed binary reader/writer the payload
//!   serializers are built on (the vendored `serde` has no deserializer, so
//!   round-trippable payloads use this explicit codec).
//!
//! Nothing in this crate reads a clock, the environment, or any other
//! nondeterminism source: recovery decisions depend only on the bytes found
//! on disk, so a resumed run replays the exact computation an uninterrupted
//! run would have performed.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod atomic;
pub mod codec;
pub mod fault;
pub mod slot;
mod store;

pub use codec::{ByteReader, ByteWriter, CodecError};
pub use fault::{CommitStep, FaultPlan, FaultPoint};
pub use slot::SlotDamage;
pub use store::{Store, StoreCounters, StoreError};
