//! The on-disk slot format: a checksummed, versioned envelope around one
//! key's payload bytes.
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"NEUMMUSL"
//! 8       4     format version (little-endian u32, currently 1)
//! 12      4     key length in bytes (u32)
//! 16      8     payload length in bytes (u64)
//! 24      4     CRC-32 (IEEE) over key bytes ++ payload bytes (u32)
//! 28      ...   key (UTF-8), then payload
//! ```
//!
//! The envelope makes every slot file self-verifying:
//!
//! * a **torn** file (crash mid-write, truncation, trailing garbage) fails
//!   the length check or the CRC;
//! * a **corrupt** file (bit rot, a flipped bit anywhere) fails the CRC or
//!   the magic;
//! * a **stale-version** file fails the version check;
//! * a **hash-collision or stale-schema** file decodes fine but carries a
//!   different key string, which the [`Store`](crate::Store) compares
//!   against the requested key.
//!
//! In every damage case the decoder reports [`SlotDamage`] and the store
//! deletes the file and recomputes — a slot is never half-trusted.

use std::fmt;

/// First eight bytes of every slot file.
pub const SLOT_MAGIC: [u8; 8] = *b"NEUMMUSL";
/// Current slot format version. Bump on any envelope layout change; slots
/// carrying another version are deleted and recomputed.
pub const SLOT_VERSION: u32 = 1;
/// Fixed envelope size before the key bytes.
pub const SLOT_HEADER_BYTES: usize = 28;

/// How a slot file failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotDamage {
    /// Shorter than the fixed header.
    TooShort,
    /// The magic bytes are wrong (not a slot file, or its first page was
    /// never written).
    BadMagic,
    /// The envelope carries an unsupported format version.
    BadVersion(u32),
    /// The declared key+payload lengths disagree with the file size (torn
    /// write or trailing garbage).
    LengthMismatch,
    /// The CRC-32 over key and payload does not match (bit corruption).
    BadChecksum,
    /// The key bytes are not UTF-8.
    BadKey,
}

impl fmt::Display for SlotDamage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooShort => write!(f, "shorter than the slot header"),
            Self::BadMagic => write!(f, "bad magic"),
            Self::BadVersion(v) => write!(f, "unsupported slot version {v}"),
            Self::LengthMismatch => write!(f, "declared lengths disagree with the file size"),
            Self::BadChecksum => write!(f, "checksum mismatch"),
            Self::BadKey => write!(f, "key is not UTF-8"),
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB8_8320) over `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &byte in bytes {
        let index = (crc ^ u32::from(byte)) & 0xff;
        crc = (crc >> 8) ^ TABLE[index as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Encodes one `(key, payload)` pair as a self-verifying slot file.
#[must_use]
pub fn encode_slot(key: &str, payload: &[u8]) -> Vec<u8> {
    let key_bytes = key.as_bytes();
    let mut body = Vec::with_capacity(key_bytes.len() + payload.len());
    body.extend_from_slice(key_bytes);
    body.extend_from_slice(payload);
    let crc = crc32(&body);

    let mut out = Vec::with_capacity(SLOT_HEADER_BYTES + body.len());
    out.extend_from_slice(&SLOT_MAGIC);
    out.extend_from_slice(&SLOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(key_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Validates and decodes a slot file into its `(key, payload)` pair.
///
/// # Errors
///
/// [`SlotDamage`] describing exactly how the file failed validation; the
/// caller deletes the file and recomputes.
pub fn decode_slot(bytes: &[u8]) -> Result<(String, Vec<u8>), SlotDamage> {
    if bytes.len() < SLOT_HEADER_BYTES {
        return Err(SlotDamage::TooShort);
    }
    if bytes[0..8] != SLOT_MAGIC {
        return Err(SlotDamage::BadMagic);
    }
    let u32_at =
        |i: usize| u32::from_le_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]]);
    let version = u32_at(8);
    if version != SLOT_VERSION {
        return Err(SlotDamage::BadVersion(version));
    }
    let key_len = u32_at(12) as usize;
    let payload_len = {
        let mut le = [0u8; 8];
        le.copy_from_slice(&bytes[16..24]);
        u64::from_le_bytes(le)
    };
    let declared = usize::try_from(payload_len)
        .ok()
        .and_then(|p| key_len.checked_add(p))
        .and_then(|body| SLOT_HEADER_BYTES.checked_add(body));
    if declared != Some(bytes.len()) {
        return Err(SlotDamage::LengthMismatch);
    }
    let crc = u32_at(24);
    let body = &bytes[SLOT_HEADER_BYTES..];
    if crc32(body) != crc {
        return Err(SlotDamage::BadChecksum);
    }
    let key = std::str::from_utf8(&body[..key_len]).map_err(|_| SlotDamage::BadKey)?;
    Ok((key.to_string(), body[key_len..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_reference_vector() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_key_and_payload() {
        let bytes = encode_slot("oracle/v1/some-key", &[9, 8, 7, 6]);
        let (key, payload) = decode_slot(&bytes).unwrap();
        assert_eq!(key, "oracle/v1/some-key");
        assert_eq!(payload, vec![9, 8, 7, 6]);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let bytes = encode_slot("k", &[]);
        let (key, payload) = decode_slot(&bytes).unwrap();
        assert_eq!(key, "k");
        assert!(payload.is_empty());
    }

    #[test]
    fn every_truncation_point_is_detected() {
        let bytes = encode_slot("key", b"payload-bytes");
        for len in 0..bytes.len() {
            assert!(
                decode_slot(&bytes[..len]).is_err(),
                "a {len}-byte prefix of a {}-byte slot must be damage",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = encode_slot("key", b"payload");
        for bit in 0..bytes.len() * 8 {
            let mut copy = bytes.clone();
            copy[bit / 8] ^= 1 << (bit % 8);
            assert!(
                decode_slot(&copy).is_err(),
                "flipping bit {bit} must be detected"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_a_length_mismatch() {
        let mut bytes = encode_slot("key", b"payload");
        bytes.push(0);
        assert_eq!(decode_slot(&bytes), Err(SlotDamage::LengthMismatch));
    }

    #[test]
    fn foreign_versions_are_stale() {
        let mut bytes = encode_slot("key", b"payload");
        bytes[8] = 99;
        assert_eq!(decode_slot(&bytes), Err(SlotDamage::BadVersion(99)));
    }
}
