//! The persistent per-key slot store.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::atomic::{clean_stale_temps, sync_dir_of, temp_path_for};
use crate::fault::{CommitStep, FaultPlan};
use crate::slot::{decode_slot, encode_slot};

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// A real filesystem error.
    Io(io::Error),
    /// An armed [`FaultPlan`] killed the commit protocol at the given step.
    /// The on-disk state is exactly what a crash at that instant leaves.
    InjectedCrash {
        /// The step the injected crash struck at.
        step: CommitStep,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(err) => write!(f, "store I/O error: {err}"),
            Self::InjectedCrash { step } => {
                write!(f, "injected crash at commit step `{}`", step.label())
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(err: io::Error) -> Self {
        Self::Io(err)
    }
}

/// Snapshot of a store's lookup/commit counters. The three lookup outcomes
/// are disjoint: every [`Store::get`] is exactly one hit, miss, or recovery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Lookups served from a committed slot.
    pub hits: u64,
    /// Lookups that found no slot (or a slot committed under a different
    /// key — a hash collision or a foreign schema namespace).
    pub misses: u64,
    /// Lookups that found a torn, corrupt or stale-version slot, deleted it,
    /// and fell back to recompute.
    pub recovered: u64,
    /// Slots committed (renames that reached the commit point).
    pub commits: u64,
}

/// A crash-safe, idempotent per-key persistence directory.
///
/// Keys are arbitrary strings (the runner namespaces them, e.g.
/// `oracle/v1/…`); payloads are opaque bytes. A slot file is named by a
/// 64-bit FNV-1a hash of its key, and carries the full key inside its
/// checksummed envelope, so collisions and stale schemas are detected by
/// comparison, never trusted by file name.
///
/// **Recovery semantics.** [`Store::get`] returns `Some` only for a slot
/// that decodes completely, passes its CRC, carries the current format
/// version and the exact requested key. Anything else — absent, torn,
/// corrupt, stale — is a recompute: damaged files are deleted on sight. A
/// damaged store therefore never fails a run and never changes a result; it
/// only costs the recompute of the damaged keys, and because every producer
/// is deterministic, the recomputed commit is byte-identical to the lost
/// one (the idempotent-recompute argument in ARCHITECTURE.md).
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    fault: FaultPlan,
    hits: AtomicU64,
    misses: AtomicU64,
    recovered: AtomicU64,
    commits: AtomicU64,
}

impl Store {
    /// Opens (creating if needed) a store directory and removes the temp
    /// file debris of any crashed predecessor.
    ///
    /// # Errors
    ///
    /// An I/O error if the directory cannot be created or scanned.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Self::open_with_fault(dir, FaultPlan::none())
    }

    /// [`Store::open`] with an armed [`FaultPlan`] — the test entry point
    /// for in-process crash injection.
    ///
    /// # Errors
    ///
    /// An I/O error if the directory cannot be created or scanned.
    pub fn open_with_fault(dir: impl Into<PathBuf>, fault: FaultPlan) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        clean_stale_temps(&dir)?;
        Ok(Store {
            dir,
            fault,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            commits: AtomicU64::new(0),
        })
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// On-disk path of a key's slot.
    #[must_use]
    pub fn slot_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{:016x}.slot", fnv1a64(key)))
    }

    /// Looks up the committed payload of `key`.
    ///
    /// Returns `None` for an absent slot, a slot committed under a different
    /// key, or a damaged slot (which is deleted). Never returns partial or
    /// unverified bytes.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        let path = self.slot_path(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => {
                // Absent (or unreadable, which we treat identically: the
                // slot cannot be trusted, so the caller recomputes).
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_slot(&bytes) {
            Ok((slot_key, payload)) if slot_key == key => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            Ok(_) => {
                // A committed slot for some other key: a 64-bit hash
                // collision or a foreign namespace. Not damage — the next
                // put for our key overwrites it (last writer wins; both
                // writers recompute deterministically, so correctness never
                // depends on who).
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(_damage) => {
                // Torn, corrupt or stale-version: delete and recompute.
                fs::remove_file(&path).ok();
                self.recovered.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Commits `payload` under `key` with the crash-safe protocol:
    /// write the slot to a temp file, `fsync`, atomically rename over the
    /// slot path (the commit point), `fsync` the directory.
    ///
    /// Committing the same key twice is idempotent in the store's contract:
    /// producers are deterministic per key, so any two commits carry the
    /// same bytes and the last rename wins harmlessly.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on a real filesystem error;
    /// [`StoreError::InjectedCrash`] when the armed [`FaultPlan`] strikes
    /// (on-disk state is exactly the crash state for the struck step).
    pub fn put(&self, key: &str, payload: &[u8]) -> Result<(), StoreError> {
        let put_index = self.fault.begin_put();
        if self.fault.strikes(put_index, CommitStep::PreWrite) {
            return Err(StoreError::InjectedCrash {
                step: CommitStep::PreWrite,
            });
        }
        let bytes = encode_slot(key, payload);
        let path = self.slot_path(key);
        let tmp = temp_path_for(&path)?;
        if let Some(torn_at) = self.fault.torn_at(put_index) {
            // A mid-write crash: the temp file holds a prefix of the slot
            // (possibly unsynced in reality; writing it here is the *worst*
            // recoverable case, a fully visible tear).
            let mut file = fs::File::create(&tmp).map_err(StoreError::Io)?;
            file.write_all(&bytes[..torn_at.min(bytes.len())])
                .map_err(StoreError::Io)?;
            return Err(StoreError::InjectedCrash {
                step: CommitStep::MidWrite,
            });
        }
        let mut file = fs::File::create(&tmp).map_err(StoreError::Io)?;
        file.write_all(&bytes).map_err(StoreError::Io)?;
        file.sync_all().map_err(StoreError::Io)?;
        drop(file);
        if self.fault.strikes(put_index, CommitStep::PreRename) {
            return Err(StoreError::InjectedCrash {
                step: CommitStep::PreRename,
            });
        }
        fs::rename(&tmp, &path).map_err(StoreError::Io)?;
        sync_dir_of(&path);
        self.commits.fetch_add(1, Ordering::Relaxed);
        if self
            .fault
            .strikes(put_index, CommitStep::PostRenamePreJournal)
        {
            return Err(StoreError::InjectedCrash {
                step: CommitStep::PostRenamePreJournal,
            });
        }
        Ok(())
    }

    /// Counter snapshot.
    #[must_use]
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
        }
    }

    /// Test helper: flips one bit of `key`'s slot file (bit-rot injection).
    /// Returns `false` if the slot does not exist.
    ///
    /// # Errors
    ///
    /// An I/O error if the slot exists but cannot be rewritten.
    pub fn corrupt_slot(&self, key: &str, bit_index: u64) -> io::Result<bool> {
        let path = self.slot_path(key);
        let mut bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(false),
            Err(err) => return Err(err),
        };
        if bytes.is_empty() {
            return Ok(true);
        }
        let bit = bit_index % (bytes.len() as u64 * 8);
        bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
        fs::write(&path, &bytes)?;
        Ok(true)
    }

    /// Test helper: truncates `key`'s slot file to `len` bytes (a torn
    /// final file, as left by filesystem corruption rather than by this
    /// store's own rename-based protocol). Returns `false` if the slot does
    /// not exist.
    ///
    /// # Errors
    ///
    /// An I/O error if the slot exists but cannot be rewritten.
    pub fn truncate_slot(&self, key: &str, len: usize) -> io::Result<bool> {
        let path = self.slot_path(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(false),
            Err(err) => return Err(err),
        };
        fs::write(&path, &bytes[..len.min(bytes.len())])?;
        Ok(true)
    }
}

/// 64-bit FNV-1a over a key string — the slot file name. Collisions are
/// handled by the full key stored inside the slot, so the hash only needs
/// to spread names, not to be cryptographic.
fn fnv1a64(key: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in key.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPoint;

    fn temp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "neummu_store_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn get_after_put_roundtrips_and_counts() {
        let dir = temp_store("roundtrip");
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.get("a"), None);
        store.put("a", b"payload-a").unwrap();
        assert_eq!(store.get("a").as_deref(), Some(b"payload-a".as_ref()));
        let c = store.counters();
        assert_eq!((c.hits, c.misses, c.recovered, c.commits), (1, 1, 0, 1));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopened_store_serves_previous_commits() {
        let dir = temp_store("reopen");
        {
            let store = Store::open(&dir).unwrap();
            store.put("persist/key", b"42").unwrap();
        }
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.get("persist/key").as_deref(), Some(b"42".as_ref()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recommit_overwrites_atomically() {
        let dir = temp_store("recommit");
        let store = Store::open(&dir).unwrap();
        store.put("k", b"old").unwrap();
        store.put("k", b"new-and-longer").unwrap();
        assert_eq!(store.get("k").as_deref(), Some(b"new-and-longer".as_ref()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hash_collision_is_a_miss_not_a_lie() {
        let dir = temp_store("collision");
        let store = Store::open(&dir).unwrap();
        store.put("real-key", b"payload").unwrap();
        // Simulate a collision: copy the slot onto another key's path.
        let other = "other-key";
        fs::copy(store.slot_path("real-key"), store.slot_path(other)).unwrap();
        assert_eq!(store.get(other), None);
        assert_eq!(store.counters().misses, 1);
        // The real key is still served.
        assert_eq!(store.get("real-key").as_deref(), Some(b"payload".as_ref()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_slot_is_deleted_and_recomputed() {
        let dir = temp_store("corrupt");
        let store = Store::open(&dir).unwrap();
        store.put("k", b"payload-bytes").unwrap();
        assert!(store.corrupt_slot("k", 123).unwrap());
        assert_eq!(store.get("k"), None);
        assert_eq!(store.counters().recovered, 1);
        assert!(!store.slot_path("k").exists());
        // Recompute commits again and is served.
        store.put("k", b"payload-bytes").unwrap();
        assert_eq!(store.get("k").as_deref(), Some(b"payload-bytes".as_ref()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_slot_is_deleted_and_recomputed() {
        let dir = temp_store("torn");
        let store = Store::open(&dir).unwrap();
        store.put("k", b"0123456789").unwrap();
        assert!(store.truncate_slot("k", 30).unwrap());
        assert_eq!(store.get("k"), None);
        assert_eq!(store.counters().recovered, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_commit_step_crash_recovers_to_committed_or_absent() {
        for step in CommitStep::ALL {
            for preexisting in [false, true] {
                let dir = temp_store(&format!("step_{}_{preexisting}", step.label()));
                {
                    let setup = Store::open(&dir).unwrap();
                    if preexisting {
                        setup.put("k", b"old-value").unwrap();
                    }
                }
                let store = Store::open_with_fault(
                    &dir,
                    // The faulted store is freshly opened, so its first put
                    // (index 0) is always the victim.
                    FaultPlan::crash_at(FaultPoint {
                        put_index: 0,
                        step,
                        torn_at: 17,
                    }),
                )
                .unwrap();
                let err = store.put("k", b"new-value").unwrap_err();
                assert!(matches!(err, StoreError::InjectedCrash { step: s } if s == step));
                drop(store);

                // "Reboot": reopen and observe.
                let recovered = Store::open(&dir).unwrap();
                let value = recovered.get("k");
                match step {
                    CommitStep::PreWrite | CommitStep::MidWrite | CommitStep::PreRename => {
                        // Before the commit point: the old state survives.
                        if preexisting {
                            assert_eq!(value.as_deref(), Some(b"old-value".as_ref()), "{step:?}");
                        } else {
                            assert_eq!(value, None, "{step:?}");
                        }
                    }
                    CommitStep::PostRenamePreJournal => {
                        // At/after the commit point: the new value is durable.
                        assert_eq!(value.as_deref(), Some(b"new-value".as_ref()), "{step:?}");
                    }
                }
                // No temp debris survives the reopen.
                for entry in fs::read_dir(&dir).unwrap() {
                    let name = entry.unwrap().file_name();
                    assert!(
                        !name.to_string_lossy().contains(crate::atomic::TMP_MARKER),
                        "stale temp {name:?} after recovery from {step:?}"
                    );
                }
                // And the slot can be (re)committed cleanly.
                recovered.put("k", b"new-value").unwrap();
                assert_eq!(recovered.get("k").as_deref(), Some(b"new-value".as_ref()));
                fs::remove_dir_all(&dir).ok();
            }
        }
    }

    #[test]
    fn fnv_spreads_distinct_keys() {
        assert_ne!(fnv1a64("a"), fnv1a64("b"));
        assert_ne!(fnv1a64("oracle/v1/x"), fnv1a64("tenant/v1/x"));
    }
}
