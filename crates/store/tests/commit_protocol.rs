//! Property tests of the slot commit protocol.
//!
//! The contract under attack: for *any* set of keys, *any* injected crash
//! point in the commit protocol, and *any* bit/truncation corruption of the
//! surviving files, a reopened store serves each key either its exact
//! committed payload or nothing — never a torn read, never another key's
//! bytes — and a recompute-and-recommit always restores full service.

use std::fs;
use std::path::PathBuf;

use proptest::collection;
use proptest::prelude::*;

use neummu_store::fault::{CommitStep, FaultPlan, FaultPoint};
use neummu_store::{Store, StoreError};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "neummu_store_proptest_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// A deterministic key set: the vendored proptest has no string strategies,
/// so keys are derived from a salt — which still varies hash placement,
/// slashes and lengths across cases.
fn keys_for(salt: u64, count: usize) -> Vec<String> {
    (0..count)
        .map(|i| match (salt + i as u64) % 3 {
            0 => format!("oracle/v{salt}/key{i}"),
            1 => format!("tenant/v{salt}/k{i}/sub{}", salt % 7),
            _ => format!("family/{salt}-{i}"),
        })
        .collect()
}

/// Deterministic per-key payload, so the "recompute" of a key is a pure
/// function of the key — exactly the store's production contract.
fn payload_for(key: &str, len: usize) -> Vec<u8> {
    key.as_bytes().iter().copied().cycle().take(len).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Crash at a random step of a random put over a random key set:
    /// recovery yields the committed value or a clean recompute, never a
    /// torn read.
    #[test]
    fn recovery_after_any_injected_crash_is_committed_or_recomputed(
        salt in 0u64..1000,
        key_count in 1usize..8,
        victim in 0u64..8,
        step_index in 0usize..CommitStep::ALL.len(),
        torn_at in 0usize..4096,
        payload_len in 0usize..2048,
    ) {
        let keys = keys_for(salt, key_count);
        let step = CommitStep::ALL[step_index];
        let victim_index = victim % keys.len() as u64;
        let dir = temp_dir("crash");

        let store = Store::open_with_fault(
            &dir,
            FaultPlan::crash_at(FaultPoint { put_index: victim_index, step, torn_at }),
        ).unwrap();
        let mut crashed_at_key = None;
        for (i, key) in keys.iter().enumerate() {
            match store.put(key, &payload_for(key, payload_len + i)) {
                Ok(()) => prop_assert!(crashed_at_key.is_none(), "puts continued after the crash"),
                Err(StoreError::InjectedCrash { step: s }) => {
                    prop_assert_eq!(s, step);
                    prop_assert_eq!(i as u64, victim_index);
                    crashed_at_key = Some(key.clone());
                    break; // the process is "dead" from here on
                }
                Err(err) => prop_assert!(false, "unexpected I/O error: {err}"),
            }
        }
        prop_assert!(crashed_at_key.is_some(), "the armed fault must strike");
        drop(store);

        // Reboot. Every key committed before the crash must read back
        // exactly; the victim key reads back either fully (crash after the
        // commit point) or not at all; keys after the victim are absent.
        let recovered = Store::open(&dir).unwrap();
        for (i, key) in keys.iter().enumerate() {
            let expected = payload_for(key, payload_len + i);
            let value = recovered.get(key);
            match (i as u64).cmp(&victim_index) {
                std::cmp::Ordering::Less => {
                    prop_assert_eq!(value.as_deref(), Some(expected.as_slice()),
                        "pre-crash commit of `{}` must survive", key);
                }
                std::cmp::Ordering::Equal => {
                    if step == CommitStep::PostRenamePreJournal {
                        prop_assert_eq!(value.as_deref(), Some(expected.as_slice()),
                            "post-commit-point crash must leave `{}` durable", key);
                    } else if let Some(read) = value {
                        // A pre-commit-point crash may never fabricate a
                        // value: the slot must be absent.
                        prop_assert_eq!(&read, &expected,
                            "victim key `{}` returned torn bytes", key);
                        prop_assert!(false, "victim slot visible before the commit point");
                    }
                }
                std::cmp::Ordering::Greater => {
                    prop_assert_eq!(value, None, "key `{}` was never committed", key);
                }
            }
        }
        // The resumed run recomputes every missing key; afterwards the
        // store serves the full set.
        for (i, key) in keys.iter().enumerate() {
            let expected = payload_for(key, payload_len + i);
            if recovered.get(key).is_none() {
                recovered.put(key, &expected).unwrap();
            }
            prop_assert_eq!(recovered.get(key).as_deref(), Some(expected.as_slice()));
        }
        fs::remove_dir_all(&dir).ok();
    }

    /// Random bit flips and truncations over committed slots: a lookup
    /// returns the exact committed payload or falls back to recompute —
    /// never corrupted bytes — and the store never errors.
    #[test]
    fn corruption_yields_committed_value_or_clean_recompute(
        salt in 0u64..1000,
        key_count in 1usize..8,
        corruptions in collection::vec((0u64..8, 0u64..1_000_000, 0usize..4096), 1..6),
        payload_len in 0usize..2048,
    ) {
        let keys = keys_for(salt, key_count);
        let dir = temp_dir("bitrot");
        let store = Store::open(&dir).unwrap();
        for (i, key) in keys.iter().enumerate() {
            store.put(key, &payload_for(key, payload_len + i)).unwrap();
        }
        for (which, bit, len) in corruptions {
            let key = &keys[(which % keys.len() as u64) as usize];
            if bit % 2 == 0 {
                store.corrupt_slot(key, bit).unwrap();
            } else {
                store.truncate_slot(key, len).unwrap();
            }
        }
        drop(store);

        let recovered = Store::open(&dir).unwrap();
        for (i, key) in keys.iter().enumerate() {
            let expected = payload_for(key, payload_len + i);
            match recovered.get(key) {
                Some(read) => prop_assert_eq!(read, expected,
                    "corrupted slot `{}` served torn bytes", key),
                None => {
                    // Clean recompute path: recommit and verify.
                    recovered.put(key, &expected).unwrap();
                    prop_assert_eq!(recovered.get(key).as_deref(), Some(expected.as_slice()));
                }
            }
        }
        fs::remove_dir_all(&dir).ok();
    }

    /// Committing twice (the resume overlap case: two runs both computed a
    /// key) is idempotent — the slot always serves the deterministic value.
    #[test]
    fn double_commit_is_idempotent(
        salt in 0u64..1000,
        key_count in 1usize..8,
        payload_len in 0usize..512,
    ) {
        let keys = keys_for(salt, key_count);
        let dir = temp_dir("idem");
        let store = Store::open(&dir).unwrap();
        for (i, key) in keys.iter().enumerate() {
            let payload = payload_for(key, payload_len + i);
            store.put(key, &payload).unwrap();
            store.put(key, &payload).unwrap();
            prop_assert_eq!(store.get(key).as_deref(), Some(payload.as_slice()));
        }
        fs::remove_dir_all(&dir).ok();
    }
}

/// Exhaustive (non-randomized) sweep: every labeled injection point, with
/// and without a previously committed value, with tears at every
/// interesting byte of a small slot. This is the matrix the acceptance
/// criterion names: every labeled injection point exercised, recovery
/// always committed-or-recomputed.
#[test]
fn every_injection_point_with_every_tear_offset_recovers() {
    let payload = b"deterministic-payload";
    for step in CommitStep::ALL {
        // A small slot is ~28 + key + payload bytes; sweep tears across it.
        for torn_at in [0, 1, 7, 27, 28, 29, 40, 64, 4096] {
            for preexisting in [false, true] {
                let dir = temp_dir(&format!("matrix_{}_{torn_at}_{preexisting}", step.label()));
                {
                    let setup = Store::open(&dir).unwrap();
                    if preexisting {
                        setup.put("matrix-key", payload).unwrap();
                    }
                }
                let store = Store::open_with_fault(
                    &dir,
                    FaultPlan::crash_at(FaultPoint {
                        put_index: 0,
                        step,
                        torn_at,
                    }),
                )
                .unwrap();
                store.put("matrix-key", payload).unwrap_err();
                drop(store);

                let recovered = Store::open(&dir).unwrap();
                match recovered.get("matrix-key") {
                    Some(read) => assert_eq!(read, payload, "torn read at {step:?}/{torn_at}"),
                    None => assert!(
                        !preexisting && step != CommitStep::PostRenamePreJournal,
                        "lost a durable value at {step:?}/{torn_at}"
                    ),
                }
                recovered.put("matrix-key", payload).unwrap();
                assert_eq!(
                    recovered.get("matrix-key").as_deref(),
                    Some(payload.as_ref())
                );
                fs::remove_dir_all(&dir).ok();
            }
        }
    }
}

/// Seed-driven plans drive the same machinery (the out-of-process harness's
/// in-process twin): any seed must leave the store recoverable.
#[test]
fn seeded_fault_plans_always_recover() {
    for seed in 0..32u64 {
        let dir = temp_dir(&format!("seeded_{seed}"));
        let keys: Vec<String> = (0..6).map(|i| format!("seeded/key{i}")).collect();
        let store = Store::open_with_fault(&dir, FaultPlan::from_seed(seed, 6)).unwrap();
        for key in &keys {
            if store.put(key, key.as_bytes()).is_err() {
                break;
            }
        }
        drop(store);
        let recovered = Store::open(&dir).unwrap();
        for key in &keys {
            match recovered.get(key) {
                Some(read) => assert_eq!(read, key.as_bytes(), "seed {seed}"),
                None => recovered.put(key, key.as_bytes()).unwrap(),
            }
            assert_eq!(
                recovered.get(key).as_deref(),
                Some(key.as_bytes()),
                "seed {seed}"
            );
        }
        fs::remove_dir_all(&dir).ok();
    }
}
