//! Breakdown statistics over a decoded [`Trace`]: the computations behind
//! the `neummu_profile` tables, kept here so tests and other tools can reuse
//! them without the binary.

use std::collections::BTreeMap;

use crate::read::Trace;

/// The three label namespaces (see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// `wall/…`: wall-clock nanosecond spans from the experiment runner.
    Wall,
    /// `count/…`: counters; `payload` is the increment, the span is empty.
    Counter,
    /// Everything else: deterministic simulated-cycle spans.
    Cycle,
}

impl EventClass {
    /// Classifies a kind label by its prefix.
    #[must_use]
    pub fn of(label: &str) -> Self {
        if label.starts_with("wall/") {
            Self::Wall
        } else if label.starts_with("count/") {
            Self::Counter
        } else {
            Self::Cycle
        }
    }
}

/// Per-kind breakdown over every event of that kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KindStats {
    /// The kind label.
    pub label: String,
    /// Namespace of the label.
    pub class: EventClass,
    /// Number of events.
    pub events: u64,
    /// Sum of payloads (for binned engine kinds: total requests covered).
    pub payload_total: u64,
    /// Sum of span lengths.
    pub span_total: u64,
    /// 99th-percentile span length.
    pub span_p99: u64,
    /// Longest span.
    pub span_max: u64,
}

impl KindStats {
    /// Mean span length (0 with no events).
    #[must_use]
    pub fn span_mean(&self) -> u64 {
        self.span_total.checked_div(self.events).unwrap_or(0)
    }
}

/// Per-tenant totals over the cycle-span events attributed to one ASID.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantStats {
    /// Raw ASID (0 = global / single-tenant runs).
    pub asid: u16,
    /// Number of cycle-span events.
    pub events: u64,
    /// Sum of payloads.
    pub payload_total: u64,
    /// Sum of span lengths ("busy cycles" credited to the tenant).
    pub span_total: u64,
}

/// Value at quantile `p` (0.0–1.0) of an **ascending-sorted** slice, using
/// the nearest-rank method; 0 for an empty slice.
#[must_use]
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Per-kind statistics for every kind in the trace, sorted by total span
/// descending (ties broken by label) so "hottest first" is the natural
/// iteration order.
#[must_use]
pub fn kind_breakdown(trace: &Trace) -> Vec<KindStats> {
    let mut spans: BTreeMap<&str, (Vec<u64>, u64)> = BTreeMap::new();
    for event in trace.events() {
        let entry = spans.entry(trace.label(event.kind)).or_default();
        entry.0.push(event.span());
        entry.1 = entry.1.saturating_add(event.payload);
    }
    let mut stats: Vec<KindStats> = spans
        .into_iter()
        .map(|(label, (mut spans, payload_total))| {
            spans.sort_unstable();
            KindStats {
                label: label.to_string(),
                class: EventClass::of(label),
                events: spans.len() as u64,
                payload_total,
                span_total: spans.iter().sum(),
                span_p99: percentile(&spans, 0.99),
                span_max: spans.last().copied().unwrap_or(0),
            }
        })
        .collect();
    stats.sort_by(|a, b| b.span_total.cmp(&a.span_total).then(a.label.cmp(&b.label)));
    stats
}

/// Per-tenant totals over cycle-span events, in ascending ASID order.
#[must_use]
pub fn tenant_breakdown(trace: &Trace) -> Vec<TenantStats> {
    let mut tenants: BTreeMap<u16, TenantStats> = BTreeMap::new();
    for event in trace.events() {
        if EventClass::of(trace.label(event.kind)) != EventClass::Cycle {
            continue;
        }
        let entry = tenants.entry(event.asid).or_insert(TenantStats {
            asid: event.asid,
            events: 0,
            payload_total: 0,
            span_total: 0,
        });
        entry.events += 1;
        entry.payload_total = entry.payload_total.saturating_add(event.payload);
        entry.span_total = entry.span_total.saturating_add(event.span());
    }
    tenants.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, TraceSink};

    fn demo_trace() -> Trace {
        let path =
            std::env::temp_dir().join(format!("neummu_trace_analyze_{}.trace", std::process::id()));
        let sink = TraceSink::to_file(&path).unwrap();
        let walk = sink.kind("engine/page_walk");
        let hit = sink.kind("engine/tlb_hit");
        let wall = sink.kind("wall/job/fig06");
        for i in 0..100u64 {
            sink.emit(Event {
                kind: walk,
                asid: 1,
                start: i * 10,
                end: i * 10 + i,
                payload: 1,
            });
        }
        sink.emit(Event {
            kind: hit,
            asid: 2,
            start: 0,
            end: 4,
            payload: 256,
        });
        sink.emit(Event {
            kind: wall,
            asid: 0,
            start: 0,
            end: 1_000_000,
            payload: 1,
        });
        sink.finish().unwrap();
        let trace = Trace::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        trace
    }

    #[test]
    fn classifies_by_prefix() {
        assert_eq!(EventClass::of("wall/job/x"), EventClass::Wall);
        assert_eq!(EventClass::of("count/tlb_hits"), EventClass::Counter);
        assert_eq!(EventClass::of("engine/page_walk"), EventClass::Cycle);
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        let spans: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&spans, 0.99), 99);
        assert_eq!(percentile(&spans, 1.0), 100);
        assert_eq!(percentile(&spans, 0.5), 50);
        assert_eq!(percentile(&[], 0.99), 0);
    }

    #[test]
    fn kind_breakdown_sorts_hottest_first() {
        let stats = kind_breakdown(&demo_trace());
        // wall span (1e6) > walk spans (sum 0..100 = 4950) > hit span (4).
        assert_eq!(stats[0].label, "wall/job/fig06");
        assert_eq!(stats[1].label, "engine/page_walk");
        assert_eq!(stats[1].events, 100);
        assert_eq!(stats[1].span_total, 4950);
        assert_eq!(stats[1].span_p99, 98);
        assert_eq!(stats[1].span_max, 99);
        assert_eq!(stats[1].span_mean(), 49);
        assert_eq!(stats[2].label, "engine/tlb_hit");
        assert_eq!(stats[2].payload_total, 256);
    }

    #[test]
    fn tenant_breakdown_ignores_wall_kinds() {
        let tenants = tenant_breakdown(&demo_trace());
        assert_eq!(tenants.len(), 2);
        assert_eq!(tenants[0].asid, 1);
        assert_eq!(tenants[0].span_total, 4950);
        assert_eq!(tenants[1].asid, 2);
        assert_eq!(tenants[1].payload_total, 256);
    }
}
