//! The fixed-width event record and the on-disk format constants.
//!
//! A trace file is:
//!
//! ```text
//! offset 0          one 4096-byte header page (see `sink.rs` for layout)
//! offset 4096       `event_count` records of EVENT_BYTES bytes each
//! next page bound   string table: per label, u32 byte length + UTF-8 bytes
//! ```
//!
//! Every multi-byte field is little-endian. The record is 32 bytes so that a
//! 4 KiB page holds exactly 128 records and a buffered writer never splits a
//! record across its own flush granularity.

/// Size of one encoded [`Event`] in bytes.
pub const EVENT_BYTES: usize = 32;

/// Alignment unit of the file format: header size and string-table offset.
pub const PAGE_BYTES: u64 = 4096;

/// Magic bytes at offset 0 of every trace file.
pub const TRACE_MAGIC: [u8; 8] = *b"NEUMMUTR";

/// Format version written to (and required in) the header.
pub const TRACE_VERSION: u32 = 1;

/// Identifier of an interned kind label, assigned by
/// [`TraceSink::kind`](crate::TraceSink::kind) in first-registration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KindId(u16);

impl KindId {
    /// Wraps a raw kind index (used by the decoder; sinks assign ids via
    /// interning).
    #[must_use]
    pub const fn from_raw(raw: u16) -> Self {
        Self(raw)
    }

    /// The raw index into the trace's string table.
    #[must_use]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// The raw index widened for direct slice indexing.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// One trace event: a `[start, end]` span of some kind, attributed to an
/// address space, with a free-form `payload` (request count, counter value,
/// bytes — whatever the kind defines).
///
/// `start`/`end` are simulated cycles for ordinary kinds and nanoseconds
/// since the profile epoch for `wall/…` kinds; counters use an empty span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Event {
    /// Which kind of event this is (index into the sink's label table).
    pub kind: KindId,
    /// Raw ASID of the address space the event belongs to (0 = global).
    pub asid: u16,
    /// Span start (inclusive).
    pub start: u64,
    /// Span end (exclusive for durations; `end == start` for point events).
    pub end: u64,
    /// Kind-defined payload: request count for binned engine events, the
    /// increment for `count/…` kinds, job weight for `wall/…` kinds.
    pub payload: u64,
}

impl Event {
    /// Span length, saturating at zero if `end < start`.
    #[must_use]
    pub const fn span(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Encodes the record into its 32-byte little-endian wire form.
    /// Bytes 4..8 are reserved and always zero in version 1.
    #[must_use]
    pub fn encode(&self) -> [u8; EVENT_BYTES] {
        let mut out = [0u8; EVENT_BYTES];
        out[0..2].copy_from_slice(&self.kind.raw().to_le_bytes());
        out[2..4].copy_from_slice(&self.asid.to_le_bytes());
        out[8..16].copy_from_slice(&self.start.to_le_bytes());
        out[16..24].copy_from_slice(&self.end.to_le_bytes());
        out[24..32].copy_from_slice(&self.payload.to_le_bytes());
        out
    }

    /// Decodes a record from its 32-byte wire form. Inverse of
    /// [`Event::encode`]; reserved bytes are ignored.
    #[must_use]
    pub fn decode(bytes: &[u8; EVENT_BYTES]) -> Self {
        let u16_at = |i: usize| u16::from_le_bytes([bytes[i], bytes[i + 1]]);
        let u64_at = |i: usize| {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&bytes[i..i + 8]);
            u64::from_le_bytes(raw)
        };
        Self {
            kind: KindId::from_raw(u16_at(0)),
            asid: u16_at(2),
            start: u64_at(8),
            end: u64_at(16),
            payload: u64_at(24),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_is_identity() {
        let event = Event {
            kind: KindId::from_raw(7),
            asid: 3,
            start: 0x0123_4567_89ab_cdef,
            end: u64::MAX,
            payload: 42,
        };
        assert_eq!(Event::decode(&event.encode()), event);
    }

    #[test]
    fn reserved_bytes_stay_zero() {
        let event = Event {
            kind: KindId::from_raw(u16::MAX),
            asid: u16::MAX,
            start: u64::MAX,
            end: u64::MAX,
            payload: u64::MAX,
        };
        assert_eq!(&event.encode()[4..8], &[0, 0, 0, 0]);
    }

    #[test]
    fn span_saturates() {
        let event = Event {
            kind: KindId::from_raw(0),
            asid: 0,
            start: 10,
            end: 4,
            payload: 0,
        };
        assert_eq!(event.span(), 0);
    }
}
