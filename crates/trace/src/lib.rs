//! Cycle-resolved binary event tracing for the NeuMMU simulation stack.
//!
//! The shape follows rustc's `measureme`/`analyzeme` split: a compact
//! fixed-width event record, a buffered per-thread sink that appends records
//! to a page-aligned binary file with a versioned header and an interned
//! string table for kind labels, and a separate decoder ([`Trace`]) that the
//! `neummu_profile` analyzer builds its breakdown tables from.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** Tracing is opt-in; emission sites guard on
//!    a captured `enabled` flag or [`global()`] being `Some`, and artifact
//!    bytes must be unchanged whether or not a sink is installed.
//! 2. **No clocks in the sink.** Event timestamps are *supplied by the
//!    caller*: simulation components pass deterministic simulated-cycle
//!    spans, and the only wall-clock spans in a trace come from the
//!    experiment runner, which is already the lint rule D002 allowlist for
//!    `Instant::now()`. This crate never reads a clock, so trace *content*
//!    (the decoded event multiset, minus the runner's `wall/`-prefixed
//!    kinds) is identical across `--threads 1` and `--threads 4`.
//! 3. **Allocation-free hot path.** [`TraceSink::emit`] appends a 32-byte
//!    `Copy` record to a pre-sized thread-local buffer; interning, file I/O
//!    and aggregation happen on buffer drain, label registration, or
//!    [`TraceSink::finish`].
//!
//! # Kind-label namespaces
//!
//! Labels are free-form, but three prefixes carry meaning for analysis:
//!
//! - `wall/…` — spans measured in wall-clock nanoseconds by the runner.
//!   Excluded from [`Trace::canonical_lines`], because wall time is
//!   nondeterministic by nature.
//! - `count/…` — counters: `payload` holds the increment, the span is empty.
//! - everything else — spans measured in deterministic simulated cycles.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod analyze;
mod event;
mod read;
mod sink;

pub use analyze::{
    kind_breakdown, percentile, tenant_breakdown, EventClass, KindStats, TenantStats,
};
pub use event::{Event, KindId, EVENT_BYTES, PAGE_BYTES, TRACE_MAGIC, TRACE_VERSION};
pub use read::{Trace, TraceError};
pub use sink::{enabled, global, install, KindAggregate, TraceSink};
