//! Trace decoding: the `analyzeme` half of the crate.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::event::{Event, KindId, EVENT_BYTES, TRACE_MAGIC, TRACE_VERSION};

/// Why a trace file failed to load.
#[derive(Debug)]
pub enum TraceError {
    /// The file could not be read.
    Io(io::Error),
    /// The bytes are not a (finished) version-1 trace.
    Format(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(err) => write!(f, "trace I/O error: {err}"),
            Self::Format(msg) => write!(f, "malformed trace: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(err: io::Error) -> Self {
        Self::Io(err)
    }
}

fn format_err<T>(msg: impl Into<String>) -> Result<T, TraceError> {
    Err(TraceError::Format(msg.into()))
}

/// A fully decoded trace: kind labels plus every event, in file order.
#[derive(Debug, Clone)]
pub struct Trace {
    labels: Vec<String>,
    events: Vec<Event>,
}

impl Trace {
    /// Loads and validates a trace file written by
    /// [`TraceSink::to_file`](crate::TraceSink::to_file) and finalized by
    /// [`TraceSink::finish`](crate::TraceSink::finish).
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] if the file cannot be read, [`TraceError::Format`]
    /// on bad magic/version (including the zeroed header of an unfinished
    /// trace), truncated sections, out-of-range kind ids, or non-UTF-8
    /// labels.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        Self::from_bytes(&fs::read(path)?)
    }

    /// Decodes a trace from its raw bytes. See [`Trace::load`].
    ///
    /// # Errors
    ///
    /// [`TraceError::Format`] as for [`Trace::load`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceError> {
        if bytes.len() < 36 {
            return format_err("shorter than the header");
        }
        if bytes[0..8] != TRACE_MAGIC {
            return format_err("bad magic (unfinished trace, or not a trace file)");
        }
        let u32_at =
            |i: usize| u32::from_le_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]]);
        let u64_at = |i: usize| {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&bytes[i..i + 8]);
            u64::from_le_bytes(raw)
        };
        let version = u32_at(8);
        if version != TRACE_VERSION {
            return format_err(format!("unsupported version {version}"));
        }
        let event_size = u32_at(12) as usize;
        if event_size != EVENT_BYTES {
            return format_err(format!("unsupported event size {event_size}"));
        }
        let event_count = u64_at(16);
        let table_offset = u64_at(24);
        let string_count = u32_at(32) as usize;

        let events_start = crate::PAGE_BYTES as usize;
        let events_len = usize::try_from(event_count)
            .ok()
            .and_then(|n| n.checked_mul(EVENT_BYTES))
            .filter(|len| {
                events_start
                    .checked_add(*len)
                    .is_some_and(|end| end <= bytes.len())
            });
        let Some(events_len) = events_len else {
            return format_err("event section truncated");
        };
        let Ok(table_offset) = usize::try_from(table_offset) else {
            return format_err("string table offset out of range");
        };
        if table_offset < events_start + events_len || table_offset > bytes.len() {
            return format_err("string table offset out of range");
        }

        let mut labels = Vec::with_capacity(string_count);
        let mut cursor = table_offset;
        for _ in 0..string_count {
            if cursor + 4 > bytes.len() {
                return format_err("string table truncated");
            }
            let len = u32_at(cursor) as usize;
            cursor += 4;
            if cursor + len > bytes.len() {
                return format_err("string table truncated");
            }
            match std::str::from_utf8(&bytes[cursor..cursor + len]) {
                Ok(label) => labels.push(label.to_string()),
                Err(_) => return format_err("kind label is not UTF-8"),
            }
            cursor += len;
        }

        let mut events = Vec::with_capacity(events_len / EVENT_BYTES);
        for record in bytes[events_start..events_start + events_len].chunks_exact(EVENT_BYTES) {
            let mut raw = [0u8; EVENT_BYTES];
            raw.copy_from_slice(record);
            let event = Event::decode(&raw);
            if event.kind.index() >= labels.len() {
                return format_err(format!(
                    "event references unknown kind {}",
                    event.kind.raw()
                ));
            }
            events.push(event);
        }
        Ok(Self { labels, events })
    }

    /// Kind labels in id order.
    #[must_use]
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Label of one kind id (panics if out of range — `load` validated every
    /// event's kind, so ids taken from this trace's events are always valid).
    #[must_use]
    pub fn label(&self, kind: KindId) -> &str {
        &self.labels[kind.index()]
    }

    /// Every event, in file order (file order is *not* deterministic across
    /// thread counts; use [`Trace::canonical_lines`] for comparisons).
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The deterministic content of the trace: one `label\tasid\tstart\t`
    /// `end\tpayload` line per event, sorted, with wall-clock (`wall/…`)
    /// kinds excluded. Two runs of the same experiment at different thread
    /// counts must produce byte-identical canonical lines — thread
    /// interleaving may reorder the file and renumber kind ids, but the
    /// decoded multiset of deterministic events is invariant.
    #[must_use]
    pub fn canonical_lines(&self) -> String {
        let mut lines: Vec<String> = self
            .events
            .iter()
            .filter(|event| EventClass::of(self.label(event.kind)) != EventClass::Wall)
            .map(|event| {
                format!(
                    "{}\t{}\t{}\t{}\t{}",
                    self.label(event.kind),
                    event.asid,
                    event.start,
                    event.end,
                    event.payload
                )
            })
            .collect();
        lines.sort_unstable();
        let mut out = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
        for line in lines {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

use crate::analyze::EventClass;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceSink;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "neummu_trace_read_{tag}_{}.trace",
            std::process::id()
        ))
    }

    #[test]
    fn file_roundtrip_preserves_labels_and_events() {
        let path = temp_path("roundtrip");
        let sink = TraceSink::to_file(&path).unwrap();
        let walk = sink.kind("engine/page_walk");
        let wall = sink.kind("wall/job/demo");
        sink.emit(Event {
            kind: walk,
            asid: 2,
            start: 100,
            end: 180,
            payload: 64,
        });
        sink.emit(Event {
            kind: wall,
            asid: 0,
            start: 0,
            end: 999,
            payload: 1,
        });
        assert_eq!(sink.finish().unwrap(), 2);

        let trace = Trace::load(&path).unwrap();
        assert_eq!(trace.labels(), ["engine/page_walk", "wall/job/demo"]);
        assert_eq!(trace.events().len(), 2);
        assert_eq!(trace.events()[0].payload, 64);
        // Canonical content drops the wall-clock kind.
        assert_eq!(
            trace.canonical_lines(),
            "engine/page_walk\t2\t100\t180\t64\n"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unfinished_trace_is_rejected() {
        let path = temp_path("unfinished");
        let sink = TraceSink::to_file(&path).unwrap();
        sink.emit(Event {
            kind: sink.kind("k"),
            asid: 0,
            start: 0,
            end: 1,
            payload: 0,
        });
        // No finish(): the header page stays zeroed.
        drop(sink);
        assert!(matches!(Trace::load(&path), Err(TraceError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_event_section_is_rejected() {
        let path = temp_path("truncated");
        let sink = TraceSink::to_file(&path).unwrap();
        let k = sink.kind("k");
        for i in 0..10 {
            sink.emit(Event {
                kind: k,
                asid: 0,
                start: i,
                end: i + 1,
                payload: 0,
            });
        }
        sink.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(crate::PAGE_BYTES as usize + 3 * EVENT_BYTES);
        assert!(matches!(
            Trace::from_bytes(&bytes),
            Err(TraceError::Format(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
