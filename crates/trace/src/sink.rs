//! The event sink: per-thread buffering, label interning, aggregation, and
//! the page-aligned on-disk writer.
//!
//! One sink may be installed process-wide with [`install`]; only that global
//! sink uses per-thread buffers. Each thread owns a pre-sized buffer behind
//! its own mutex — uncontended on the emit path (the only other contender is
//! a drain pass) — and the sink keeps a registry of every buffer, so
//! [`TraceSink::finish`] and [`TraceSink::aggregates`] can collect events
//! from threads that have already exited without depending on thread-local
//! destructor ordering (which `thread::scope` does not sequence before its
//! return). Private sinks — e.g. the one `SelfProfile` owns when no trace
//! file was requested — fold events under their core lock directly, which is
//! fine at per-job frequency.
//!
//! This module never reads a clock (lint rule D002): timestamps arrive in
//! the [`Event`] from the caller.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use crate::event::{Event, KindId, EVENT_BYTES, PAGE_BYTES, TRACE_MAGIC, TRACE_VERSION};

/// Events buffered per thread before the buffer drains into the shared core
/// (128 KiB of records per thread).
const LOCAL_BUF_EVENTS: usize = 4096;

/// One thread's event buffer, shared between that thread (emit path) and the
/// sink's registry (drain path).
type LocalBuf = Arc<Mutex<Vec<Event>>>;

/// Running per-kind aggregate, folded on every event so that summary tables
/// (`SelfProfile`, the experiment footer) never need to re-read the file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindAggregate {
    /// Number of events of this kind.
    pub events: u64,
    /// Sum of span lengths.
    pub span_total: u64,
    /// Shortest span (0 when `events == 0`).
    pub span_min: u64,
    /// Longest span.
    pub span_max: u64,
    /// Sum of payloads.
    pub payload_total: u64,
}

impl KindAggregate {
    fn fold(&mut self, event: &Event) {
        let span = event.span();
        self.span_min = if self.events == 0 {
            span
        } else {
            self.span_min.min(span)
        };
        self.events += 1;
        self.span_total = self.span_total.saturating_add(span);
        self.span_max = self.span_max.max(span);
        self.payload_total = self.payload_total.saturating_add(event.payload);
    }
}

/// Shared sink state behind the core mutex.
#[derive(Debug)]
struct Core {
    /// Interned labels in id order; `KindId(i)` names `labels[i]`.
    labels: Vec<String>,
    /// Label → id for interning (BTreeMap: D001, no hash-order iteration).
    ids: BTreeMap<String, u16>,
    /// Per-kind running aggregates, indexed by kind id.
    aggregates: Vec<KindAggregate>,
    /// Total events folded (== records written while the writer is healthy).
    recorded: u64,
    /// Backing file, if this sink writes a trace; `None` for in-memory sinks
    /// and after the first I/O error.
    writer: Option<BufWriter<File>>,
    /// First I/O error hit while appending records, surfaced by `finish`.
    io_error: Option<io::Error>,
}

impl Core {
    fn sink_events(&mut self, events: &[Event]) {
        for event in events {
            let idx = event.kind.index();
            if idx >= self.aggregates.len() {
                self.aggregates.resize(idx + 1, KindAggregate::default());
            }
            self.aggregates[idx].fold(event);
        }
        self.recorded += events.len() as u64;
        if self.writer.is_some() {
            let mut failed = None;
            if let Some(writer) = self.writer.as_mut() {
                for event in events {
                    if let Err(err) = writer.write_all(&event.encode()) {
                        failed = Some(err);
                        break;
                    }
                }
            }
            if let Some(err) = failed {
                self.io_error.get_or_insert(err);
                self.writer = None;
            }
        }
    }

    fn finish(&mut self) -> io::Result<u64> {
        if let Some(err) = self.io_error.take() {
            self.writer = None;
            return Err(err);
        }
        let Some(mut writer) = self.writer.take() else {
            return Ok(self.recorded);
        };
        write_tail(&mut writer, &self.labels, self.recorded)?;
        Ok(self.recorded)
    }
}

/// Pads to the string-table page boundary, appends the string table, then
/// seeks back and patches the header with the final counts.
fn write_tail(writer: &mut BufWriter<File>, labels: &[String], recorded: u64) -> io::Result<()> {
    const ZERO_PAGE: [u8; PAGE_BYTES as usize] = [0u8; PAGE_BYTES as usize];
    let events_end = PAGE_BYTES + recorded * EVENT_BYTES as u64;
    let table_offset = events_end.div_ceil(PAGE_BYTES) * PAGE_BYTES;
    let pad = (table_offset - events_end) as usize;
    writer.write_all(&ZERO_PAGE[..pad])?;
    for label in labels {
        let len = u32::try_from(label.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "kind label too long"))?;
        writer.write_all(&len.to_le_bytes())?;
        writer.write_all(label.as_bytes())?;
    }
    writer.flush()?;
    let file = writer.get_mut();
    file.seek(SeekFrom::Start(0))?;
    let mut header = [0u8; 36];
    header[0..8].copy_from_slice(&TRACE_MAGIC);
    header[8..12].copy_from_slice(&TRACE_VERSION.to_le_bytes());
    header[12..16].copy_from_slice(&(EVENT_BYTES as u32).to_le_bytes());
    header[16..24].copy_from_slice(&recorded.to_le_bytes());
    header[24..32].copy_from_slice(&table_offset.to_le_bytes());
    header[32..36].copy_from_slice(
        &u32::try_from(labels.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "too many kinds"))?
            .to_le_bytes(),
    );
    file.write_all(&header)?;
    file.flush()
}

thread_local! {
    /// The calling thread's buffer for the global sink. Registered with the
    /// sink on first touch (only the global-emit path ever touches this), so
    /// the registry keeps it alive and drainable after the thread exits.
    static LOCAL: LocalBuf = {
        let buf = Arc::new(Mutex::new(Vec::with_capacity(LOCAL_BUF_EVENTS)));
        if let Some(sink) = global() {
            sink.register_local(Arc::clone(&buf));
        }
        buf
    };
}

/// A trace event sink: interns kind labels, folds per-kind aggregates, and —
/// when created with [`TraceSink::to_file`] — appends every event to a
/// page-aligned binary trace readable by [`Trace`](crate::Trace).
#[derive(Debug)]
pub struct TraceSink {
    core: Mutex<Core>,
    /// Registry of per-thread buffers (global sink only).
    locals: Mutex<Vec<LocalBuf>>,
    /// Set by [`install`]; only the installed sink routes [`TraceSink::emit`]
    /// through the per-thread buffers.
    is_global: AtomicBool,
}

impl TraceSink {
    /// Creates a sink that only maintains in-memory aggregates (no file).
    #[must_use]
    pub fn in_memory() -> Self {
        Self::with_writer(None)
    }

    /// Creates a sink that writes a binary trace to `path`. The header is
    /// finalized by [`TraceSink::finish`]; an unfinished file is detected and
    /// rejected by the decoder (its header page stays zeroed).
    ///
    /// # Errors
    ///
    /// Returns any error from creating the file or writing the placeholder
    /// header page.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut writer = BufWriter::new(File::create(path)?);
        writer.write_all(&[0u8; PAGE_BYTES as usize])?;
        Ok(Self::with_writer(Some(writer)))
    }

    fn with_writer(writer: Option<BufWriter<File>>) -> Self {
        Self {
            core: Mutex::new(Core {
                labels: Vec::new(),
                ids: BTreeMap::new(),
                aggregates: Vec::new(),
                recorded: 0,
                writer,
                io_error: None,
            }),
            locals: Mutex::new(Vec::new()),
            is_global: AtomicBool::new(false),
        }
    }

    /// Interns `label` and returns its stable [`KindId`] (first-registration
    /// order). Calling again with the same label returns the same id.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX + 1` distinct kinds are registered.
    pub fn kind(&self, label: &str) -> KindId {
        let mut core = self.lock_core();
        if let Some(&id) = core.ids.get(label) {
            return KindId::from_raw(id);
        }
        let id = u16::try_from(core.labels.len()).expect("more than 65536 distinct event kinds");
        core.ids.insert(label.to_string(), id);
        core.labels.push(label.to_string());
        if core.aggregates.len() <= id as usize {
            core.aggregates
                .resize(id as usize + 1, KindAggregate::default());
        }
        KindId::from_raw(id)
    }

    /// Records one event. On the installed global sink this appends to the
    /// calling thread's pre-sized buffer (uncontended lock, no allocation);
    /// private sinks fold the event under their core lock immediately.
    pub fn emit(&self, event: Event) {
        if !self.is_global.load(Ordering::Relaxed) {
            self.sink_now(event);
            return;
        }
        let buffered = LOCAL.try_with(|buf| {
            let mut events = buf.lock().unwrap_or_else(PoisonError::into_inner);
            events.push(event);
            if events.len() >= LOCAL_BUF_EVENTS {
                self.lock_core().sink_events(&events);
                events.clear();
            }
        });
        if buffered.is_err() {
            // Thread-local storage already torn down (thread exit path):
            // fold directly rather than dropping the event.
            self.sink_now(event);
        }
    }

    /// Per-kind aggregates with their labels, in kind-id order. Drains every
    /// registered thread buffer first, so the result covers all events
    /// emitted before the call (emitting threads must have quiesced).
    #[must_use]
    pub fn aggregates(&self) -> Vec<(String, KindAggregate)> {
        self.drain_locals();
        let core = self.lock_core();
        core.labels
            .iter()
            .zip(core.aggregates.iter())
            .map(|(label, agg)| (label.clone(), *agg))
            .collect()
    }

    /// Total events folded so far (drains thread buffers, like
    /// [`TraceSink::aggregates`]).
    #[must_use]
    pub fn events_recorded(&self) -> u64 {
        self.drain_locals();
        self.lock_core().recorded
    }

    /// Drains every thread buffer, writes the string table, patches the
    /// header, and flushes the file. Returns the number of events recorded.
    /// Emitting threads must have quiesced (the runner joins its workers
    /// before this runs).
    ///
    /// # Errors
    ///
    /// Surfaces the first I/O error hit while appending records or writing
    /// the tail.
    pub fn finish(&self) -> io::Result<u64> {
        self.drain_locals();
        self.lock_core().finish()
    }

    fn register_local(&self, buf: LocalBuf) {
        self.locals
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(buf);
    }

    /// Folds the contents of every registered thread buffer into the core.
    /// Locks are taken buffer-then-core, same order as the emit path.
    fn drain_locals(&self) {
        let locals: Vec<LocalBuf> = self
            .locals
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        for buf in locals {
            let mut events = buf.lock().unwrap_or_else(PoisonError::into_inner);
            if events.is_empty() {
                continue;
            }
            self.lock_core().sink_events(&events);
            events.clear();
        }
    }

    fn sink_now(&self, event: Event) {
        self.lock_core().sink_events(std::slice::from_ref(&event));
    }

    fn lock_core(&self) -> MutexGuard<'_, Core> {
        self.core.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

static GLOBAL: OnceLock<TraceSink> = OnceLock::new();

/// Installs `sink` as the process-wide trace sink. Returns `None` (dropping
/// `sink`) if a sink was already installed; at most one install succeeds per
/// process.
pub fn install(sink: TraceSink) -> Option<&'static TraceSink> {
    sink.is_global.store(true, Ordering::Relaxed);
    if GLOBAL.set(sink).is_err() {
        return None;
    }
    GLOBAL.get()
}

/// The installed process-wide sink, if any.
#[must_use]
pub fn global() -> Option<&'static TraceSink> {
    GLOBAL.get()
}

/// Whether a process-wide sink is installed. Emission sites capture this (or
/// check it per flush) so that tracing is zero-cost when disabled.
#[must_use]
pub fn enabled() -> bool {
    GLOBAL.get().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: KindId, start: u64, end: u64, payload: u64) -> Event {
        Event {
            kind,
            asid: 0,
            start,
            end,
            payload,
        }
    }

    #[test]
    fn interning_is_stable_and_dense() {
        let sink = TraceSink::in_memory();
        let a = sink.kind("alpha");
        let b = sink.kind("beta");
        assert_eq!(a.raw(), 0);
        assert_eq!(b.raw(), 1);
        assert_eq!(sink.kind("alpha"), a);
        assert_eq!(
            sink.aggregates()
                .iter()
                .map(|(l, _)| l.as_str())
                .collect::<Vec<_>>(),
            ["alpha", "beta"]
        );
    }

    #[test]
    fn aggregates_fold_span_and_payload() {
        let sink = TraceSink::in_memory();
        let k = sink.kind("k");
        sink.emit(event(k, 10, 30, 2));
        sink.emit(event(k, 0, 5, 3));
        let aggs = sink.aggregates();
        let (_, agg) = &aggs[k.index()];
        assert_eq!(agg.events, 2);
        assert_eq!(agg.span_total, 25);
        assert_eq!(agg.span_min, 5);
        assert_eq!(agg.span_max, 20);
        assert_eq!(agg.payload_total, 5);
        assert_eq!(sink.events_recorded(), 2);
        assert_eq!(sink.finish().unwrap(), 2);
    }

    #[test]
    fn finish_without_file_reports_event_count() {
        let sink = TraceSink::in_memory();
        let k = sink.kind("only");
        sink.emit(event(k, 0, 1, 0));
        assert_eq!(sink.finish().unwrap(), 1);
    }
}
