//! Property tests for the trace wire format, plus the multi-threaded
//! global-sink path (per-thread buffers draining on thread exit).

use std::collections::BTreeMap;
use std::path::PathBuf;

use neummu_trace::{Event, KindId, Trace, TraceSink, EVENT_BYTES};
use proptest::prelude::*;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "neummu_trace_prop_{tag}_{}.trace",
        std::process::id()
    ))
}

/// An arbitrary event over a small label universe (kind id fixed up after
/// interning).
fn arb_event() -> impl Strategy<Value = (usize, u16, u64, u64, u64)> {
    (
        0usize..8,
        any::<u16>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random event streams encode → decode bit-exact: every field of every
    /// event survives the file round trip in order, and the interned string
    /// table reproduces the labels in first-registration order.
    #[test]
    fn file_roundtrip_is_bit_exact(raw in proptest::collection::vec(arb_event(), 0..200)) {
        let path = temp_path("bitexact");
        let sink = TraceSink::to_file(&path).unwrap();
        let labels: Vec<String> = (0..8).map(|i| format!("kind/{i}")).collect();
        let kinds: Vec<KindId> = labels.iter().map(|l| sink.kind(l)).collect();
        let mut expected = Vec::with_capacity(raw.len());
        for &(label_idx, asid, start, end, payload) in &raw {
            let event = Event { kind: kinds[label_idx], asid, start, end, payload };
            sink.emit(event);
            expected.push(event);
        }
        let written = sink.finish().unwrap();
        prop_assert_eq!(written, raw.len() as u64);

        let trace = Trace::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(trace.labels(), &labels[..]);
        prop_assert_eq!(trace.events(), &expected[..]);
    }

    /// Interning is stable: re-registering any permutation of the same
    /// labels, with repeats, always returns the id assigned on first
    /// registration.
    #[test]
    fn interning_is_stable(lookups in proptest::collection::vec(0usize..8, 1..64)) {
        let sink = TraceSink::in_memory();
        let first: Vec<KindId> = (0..8).map(|i| sink.kind(&format!("kind/{i}"))).collect();
        for &i in &lookups {
            prop_assert_eq!(sink.kind(&format!("kind/{i}")), first[i]);
        }
    }

    /// Encode/decode of a single record is the identity and keeps the record
    /// exactly EVENT_BYTES wide.
    #[test]
    fn record_codec_is_identity(kind in any::<u16>(), asid in any::<u16>(),
                                start in any::<u64>(), end in any::<u64>(),
                                payload in any::<u64>()) {
        let event = Event { kind: KindId::from_raw(kind), asid, start, end, payload };
        let bytes = event.encode();
        prop_assert_eq!(bytes.len(), EVENT_BYTES);
        prop_assert_eq!(Event::decode(&bytes), event);
    }
}

/// The installed global sink buffers per thread and loses nothing: events
/// emitted from worker threads drain on thread exit, the main thread's on
/// `finish()`, and the decoded multiset matches what was emitted.
///
/// This is the only test in the binary that installs a global sink (installs
/// are once-per-process).
#[test]
fn global_sink_collects_across_threads() {
    let path = temp_path("global");
    let sink = neummu_trace::install(TraceSink::to_file(&path).unwrap())
        .expect("first install in this process");
    assert!(neummu_trace::enabled());
    // A second install is rejected.
    assert!(neummu_trace::install(TraceSink::in_memory()).is_none());

    let kind = sink.kind("worker/span");
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            scope.spawn(move || {
                let sink = neummu_trace::global().unwrap();
                for i in 0..10_000u64 {
                    sink.emit(Event {
                        kind,
                        asid: t as u16,
                        start: i,
                        end: i + t,
                        payload: 1,
                    });
                }
            });
        }
    });
    // Main thread contributes too (stays in its thread-local buffer until
    // finish()).
    sink.emit(Event {
        kind,
        asid: 9,
        start: 0,
        end: 0,
        payload: 7,
    });
    let written = sink.finish().unwrap();
    assert_eq!(written, 4 * 10_000 + 1);

    let trace = Trace::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let mut per_asid: BTreeMap<u16, u64> = BTreeMap::new();
    for event in trace.events() {
        *per_asid.entry(event.asid).or_insert(0) += 1;
    }
    assert_eq!(
        per_asid.into_iter().collect::<Vec<_>>(),
        vec![(0, 10_000), (1, 10_000), (2, 10_000), (3, 10_000), (9, 1)]
    );
}
