//! Typed virtual and physical addresses, page numbers and page sizes.
//!
//! The NeuMMU paper assumes an x86-64 style virtual memory layout: 48-bit
//! canonical virtual addresses, 4 KB baseline pages, optional 2 MB large pages,
//! and a 4-level radix page table indexed by four 9-bit fields (L4..L1).
//! This module defines the strongly typed address vocabulary used everywhere
//! else in the workspace.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Number of index bits per radix-tree level (x86-64 uses 9).
pub const LEVEL_INDEX_BITS: u32 = 9;
/// Number of entries in one page-table node (2^9 = 512).
pub const ENTRIES_PER_TABLE: usize = 1 << LEVEL_INDEX_BITS;
/// Number of virtual-address bits actually translated (x86-64 uses 48).
pub const VA_BITS: u32 = 48;
/// Shift of a baseline 4 KB page.
pub const PAGE_SHIFT_4K: u32 = 12;
/// Shift of a 2 MB large page.
pub const PAGE_SHIFT_2M: u32 = 21;

/// Supported page sizes.
///
/// The paper evaluates baseline 4 KB pages throughout Sections IV and V and
/// revisits 2 MB large pages in Section VI-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PageSize {
    /// Baseline 4 KB page (leaf at L1).
    Size4K,
    /// 2 MB large page (leaf at L2).
    Size2M,
}

impl PageSize {
    /// Size of the page in bytes.
    #[must_use]
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Size4K => 1 << PAGE_SHIFT_4K,
            PageSize::Size2M => 1 << PAGE_SHIFT_2M,
        }
    }

    /// log2 of the page size.
    #[must_use]
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Size4K => PAGE_SHIFT_4K,
            PageSize::Size2M => PAGE_SHIFT_2M,
        }
    }

    /// Number of page-table levels that must be traversed to reach a leaf of
    /// this size (4 for 4 KB pages, 3 for 2 MB pages).
    #[must_use]
    pub const fn walk_levels(self) -> u32 {
        match self {
            PageSize::Size4K => 4,
            PageSize::Size2M => 3,
        }
    }

    /// Mask selecting the page-offset bits.
    #[must_use]
    pub const fn offset_mask(self) -> u64 {
        self.bytes() - 1
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Size4K => write!(f, "4KB"),
            PageSize::Size2M => write!(f, "2MB"),
        }
    }
}

/// A virtual address in a device (NPU) or host address space.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtAddr(u64);

/// A physical address.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysAddr(u64);

/// A virtual page number: the virtual address shifted right by the 4 KB page
/// shift. Virtual page numbers are always expressed in 4 KB units, even when a
/// region is backed by 2 MB pages, so that TLB/PTS tagging is uniform.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtPageNum(u64);

/// A physical frame number in 4 KB units.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysFrameNum(u64);

impl VirtAddr {
    /// Creates a virtual address from a raw value.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the address uses more than [`VA_BITS`] bits;
    /// the simulator never produces non-canonical addresses.
    #[inline]
    #[must_use]
    pub fn new(raw: u64) -> Self {
        debug_assert!(
            raw < (1u64 << VA_BITS),
            "virtual address {raw:#x} exceeds the {VA_BITS}-bit canonical range"
        );
        VirtAddr(raw)
    }

    /// Raw numeric value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Virtual page number (4 KB granularity).
    #[must_use]
    pub const fn vpn(self) -> VirtPageNum {
        VirtPageNum(self.0 >> PAGE_SHIFT_4K)
    }

    /// Page number at the given page size granularity.
    #[must_use]
    pub const fn page_number(self, size: PageSize) -> u64 {
        self.0 >> size.shift()
    }

    /// Offset within a page of the given size.
    #[must_use]
    pub const fn page_offset(self, size: PageSize) -> u64 {
        self.0 & size.offset_mask()
    }

    /// Address rounded down to the containing page boundary.
    #[must_use]
    pub const fn page_base(self, size: PageSize) -> VirtAddr {
        VirtAddr(self.0 & !size.offset_mask())
    }

    /// Radix-tree index at the given walk level.
    ///
    /// Level 4 is the root (bits 47..39), level 1 is the leaf level for 4 KB
    /// pages (bits 20..12).
    #[inline]
    #[must_use]
    pub fn level_index(self, level: WalkIndexLevel) -> u16 {
        let shift = PAGE_SHIFT_4K + LEVEL_INDEX_BITS * (level.as_number() - 1);
        ((self.0 >> shift) & ((1 << LEVEL_INDEX_BITS) - 1)) as u16
    }

    /// Returns the address advanced by `bytes`.
    // Named `add` for call-site readability; the byte-offset semantics differ
    // from `ops::Add` (no `VirtAddr + VirtAddr`), so the trait is not implemented.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    #[must_use]
    pub fn add(self, bytes: u64) -> VirtAddr {
        VirtAddr::new(self.0 + bytes)
    }

    /// Byte distance from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier > self`.
    #[must_use]
    pub fn offset_from(self, earlier: VirtAddr) -> u64 {
        assert!(
            earlier.0 <= self.0,
            "offset_from called with a later address ({:#x} > {:#x})",
            earlier.0,
            self.0
        );
        self.0 - earlier.0
    }

    /// True if the address is aligned to the given page size.
    #[must_use]
    pub const fn is_aligned(self, size: PageSize) -> bool {
        self.0 & size.offset_mask() == 0
    }

    /// Rounds the address up to the next boundary of the given page size.
    #[must_use]
    pub const fn align_up(self, size: PageSize) -> VirtAddr {
        let mask = size.offset_mask();
        VirtAddr((self.0 + mask) & !mask)
    }
}

impl PhysAddr {
    /// Creates a physical address from a raw value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// Raw numeric value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Physical frame number (4 KB granularity).
    #[must_use]
    pub const fn pfn(self) -> PhysFrameNum {
        PhysFrameNum(self.0 >> PAGE_SHIFT_4K)
    }

    /// Offset within a 4 KB frame.
    #[must_use]
    pub const fn frame_offset(self) -> u64 {
        self.0 & PageSize::Size4K.offset_mask()
    }
}

impl VirtPageNum {
    /// Creates a virtual page number from its raw value (4 KB units).
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        VirtPageNum(raw)
    }

    /// Raw numeric value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// First virtual address of the page.
    #[must_use]
    pub fn base_addr(self) -> VirtAddr {
        VirtAddr::new(self.0 << PAGE_SHIFT_4K)
    }

    /// The page number of the containing 2 MB region.
    #[must_use]
    pub const fn huge_page_number(self) -> u64 {
        self.0 >> (PAGE_SHIFT_2M - PAGE_SHIFT_4K)
    }

    /// Next page number.
    #[must_use]
    pub const fn next(self) -> VirtPageNum {
        VirtPageNum(self.0 + 1)
    }
}

impl PhysFrameNum {
    /// Creates a physical frame number from its raw value (4 KB units).
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        PhysFrameNum(raw)
    }

    /// Raw numeric value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// First physical address of the frame.
    #[must_use]
    pub const fn base_addr(self) -> PhysAddr {
        PhysAddr::new(self.0 << PAGE_SHIFT_4K)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pa:{:#x}", self.0)
    }
}

impl fmt::Display for VirtPageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

impl fmt::Display for PhysFrameNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

impl From<VirtAddr> for u64 {
    fn from(value: VirtAddr) -> Self {
        value.0
    }
}

impl From<PhysAddr> for u64 {
    fn from(value: PhysAddr) -> Self {
        value.0
    }
}

/// Identifies a radix-tree indexing level of the virtual address.
///
/// x86-64 names these PML4 (level 4) down to the page table (level 1). The
/// paper's TPreg caches the L4/L3/L2 components of the most recent walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum WalkIndexLevel {
    /// Leaf level for 4 KB pages (bits 20..12).
    L1,
    /// Leaf level for 2 MB pages (bits 29..21).
    L2,
    /// Page-directory-pointer level (bits 38..30).
    L3,
    /// Root level (bits 47..39).
    L4,
}

impl WalkIndexLevel {
    /// All levels ordered from root (L4) to leaf (L1), i.e. walk order.
    pub const WALK_ORDER: [WalkIndexLevel; 4] = [
        WalkIndexLevel::L4,
        WalkIndexLevel::L3,
        WalkIndexLevel::L2,
        WalkIndexLevel::L1,
    ];

    /// Numeric level (4 for the root, 1 for the 4 KB leaf level).
    #[must_use]
    pub const fn as_number(self) -> u32 {
        match self {
            WalkIndexLevel::L1 => 1,
            WalkIndexLevel::L2 => 2,
            WalkIndexLevel::L3 => 3,
            WalkIndexLevel::L4 => 4,
        }
    }

    /// Constructs a level from its numeric value.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not in `1..=4`.
    #[must_use]
    pub fn from_number(n: u32) -> Self {
        match n {
            1 => WalkIndexLevel::L1,
            2 => WalkIndexLevel::L2,
            3 => WalkIndexLevel::L3,
            4 => WalkIndexLevel::L4,
            _ => panic!("page-table level {n} out of range 1..=4"),
        }
    }
}

impl fmt::Display for WalkIndexLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.as_number())
    }
}

/// The L4/L3/L2 index triple of a virtual address.
///
/// Two addresses with identical triples share the entire upper translation
/// path; this is precisely the tag the paper's TPreg and TPC structures use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathTag {
    /// Root-level (L4) index.
    pub l4: u16,
    /// L3 index.
    pub l3: u16,
    /// L2 index.
    pub l2: u16,
}

impl PathTag {
    /// Extracts the path tag of a virtual address.
    #[inline]
    #[must_use]
    pub fn of(va: VirtAddr) -> Self {
        PathTag {
            l4: va.level_index(WalkIndexLevel::L4),
            l3: va.level_index(WalkIndexLevel::L3),
            l2: va.level_index(WalkIndexLevel::L2),
        }
    }

    /// Extracts the path tag of a virtual page number.
    #[must_use]
    pub fn of_vpn(vpn: VirtPageNum) -> Self {
        Self::of(vpn.base_addr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_constants() {
        assert_eq!(PageSize::Size4K.bytes(), 4096);
        assert_eq!(PageSize::Size2M.bytes(), 2 * 1024 * 1024);
        assert_eq!(PageSize::Size4K.walk_levels(), 4);
        assert_eq!(PageSize::Size2M.walk_levels(), 3);
        assert_eq!(PageSize::Size4K.to_string(), "4KB");
        assert_eq!(PageSize::Size2M.to_string(), "2MB");
    }

    #[test]
    fn virt_addr_page_decomposition() {
        let va = VirtAddr::new(0x1234_5678);
        assert_eq!(va.vpn().raw(), 0x12345);
        assert_eq!(va.page_offset(PageSize::Size4K), 0x678);
        assert_eq!(va.page_base(PageSize::Size4K).raw(), 0x1234_5000);
        assert_eq!(va.page_offset(PageSize::Size2M), 0x14_5678);
        assert_eq!(va.page_base(PageSize::Size2M).raw(), 0x1220_0000);
    }

    #[test]
    fn level_index_extraction_matches_manual_bit_slicing() {
        // Construct an address with known 9-bit indices: L4=5, L3=6, L2=7, L1=8.
        let raw: u64 = (5u64 << 39) | (6u64 << 30) | (7u64 << 21) | (8u64 << 12) | 0xabc;
        let va = VirtAddr::new(raw);
        assert_eq!(va.level_index(WalkIndexLevel::L4), 5);
        assert_eq!(va.level_index(WalkIndexLevel::L3), 6);
        assert_eq!(va.level_index(WalkIndexLevel::L2), 7);
        assert_eq!(va.level_index(WalkIndexLevel::L1), 8);
        assert_eq!(va.page_offset(PageSize::Size4K), 0xabc);
    }

    #[test]
    fn path_tag_equality_tracks_upper_bits_only() {
        let a = VirtAddr::new((3u64 << 39) | (1u64 << 30) | (2u64 << 21) | (10u64 << 12));
        let b = VirtAddr::new((3u64 << 39) | (1u64 << 30) | (2u64 << 21) | (511u64 << 12));
        let c = VirtAddr::new((3u64 << 39) | (1u64 << 30) | (3u64 << 21) | (10u64 << 12));
        assert_eq!(PathTag::of(a), PathTag::of(b));
        assert_ne!(PathTag::of(a), PathTag::of(c));
    }

    #[test]
    fn alignment_helpers() {
        let va = VirtAddr::new(0x1001);
        assert!(!va.is_aligned(PageSize::Size4K));
        assert_eq!(va.align_up(PageSize::Size4K).raw(), 0x2000);
        assert!(VirtAddr::new(0x20_0000).is_aligned(PageSize::Size2M));
        assert_eq!(VirtAddr::new(0).align_up(PageSize::Size2M).raw(), 0);
    }

    #[test]
    fn vpn_and_pfn_roundtrip() {
        let vpn = VirtPageNum::new(0x4_2000);
        assert_eq!(vpn.base_addr().vpn(), vpn);
        assert_eq!(vpn.next().raw(), 0x4_2001);
        let pfn = PhysFrameNum::new(77);
        assert_eq!(pfn.base_addr().pfn(), pfn);
        assert_eq!(pfn.base_addr().raw(), 77 * 4096);
    }

    #[test]
    fn huge_page_number_groups_512_small_pages() {
        let a = VirtPageNum::new(512);
        let b = VirtPageNum::new(1023);
        let c = VirtPageNum::new(1024);
        assert_eq!(a.huge_page_number(), 1);
        assert_eq!(b.huge_page_number(), 1);
        assert_eq!(c.huge_page_number(), 2);
    }

    #[test]
    fn offset_from_and_add() {
        let base = VirtAddr::new(0x10_0000);
        let later = base.add(0x234);
        assert_eq!(later.offset_from(base), 0x234);
    }

    #[test]
    #[should_panic(expected = "later address")]
    fn offset_from_panics_when_reversed() {
        let base = VirtAddr::new(0x10_0000);
        let later = base.add(0x234);
        let _ = base.offset_from(later);
    }

    #[test]
    fn walk_index_level_numbers_roundtrip() {
        for n in 1..=4 {
            assert_eq!(WalkIndexLevel::from_number(n).as_number(), n);
        }
        assert_eq!(WalkIndexLevel::WALK_ORDER[0], WalkIndexLevel::L4);
        assert_eq!(WalkIndexLevel::WALK_ORDER[3], WalkIndexLevel::L1);
    }
}
