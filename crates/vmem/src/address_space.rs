//! Device address spaces: segment allocation, demand paging and migration.
//!
//! An [`AddressSpace`] models the unified virtual address space that an
//! MMU-equipped NPU shares with the host (Section II-B of the paper). Dense
//! DNN workloads allocate a handful of large segments (input activations,
//! weights, output activations); the embedding case study additionally
//! allocates one segment per embedding-table shard, placed on the owning
//! NPU's memory node, and exercises demand paging / page migration.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::addr::{PageSize, VirtAddr, VirtPageNum};
use crate::error::VmemError;
use crate::frame_alloc::PhysicalMemory;
use crate::numa::MemNode;
use crate::page_table::{PageTable, Translation, WalkPath};

/// Base of the heap used for segment allocation.
///
/// Kept well above zero so that a null-ish address is never a valid segment
/// address, and below the 48-bit canonical limit.
const SEGMENT_BASE: u64 = 0x0000_1000_0000;

/// How a segment's pages are populated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Population {
    /// All pages are mapped at allocation time (the common case for dense
    /// DNN tensors, which the runtime allocates up front).
    Eager,
    /// Pages are mapped on first touch via [`AddressSpace::ensure_mapped`]
    /// (used to model demand paging of remote embedding pages in Figure 16).
    Lazy,
}

/// Options controlling segment allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentOptions {
    /// Memory node backing the segment.
    pub node: MemNode,
    /// Page size used for the segment's mappings.
    pub page_size: PageSize,
    /// Eager or lazy population.
    pub population: Population,
}

impl SegmentOptions {
    /// Eagerly populated segment on `node` with the given page size.
    #[must_use]
    pub fn new(node: MemNode, page_size: PageSize) -> Self {
        SegmentOptions {
            node,
            page_size,
            population: Population::Eager,
        }
    }

    /// Switches the segment to lazy (demand-paged) population.
    #[must_use]
    pub fn lazy(mut self) -> Self {
        self.population = Population::Lazy;
        self
    }
}

/// A named, contiguous virtual-address segment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    name: String,
    start: VirtAddr,
    size: u64,
    options: SegmentOptions,
}

impl Segment {
    /// Segment name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// First virtual address of the segment.
    #[must_use]
    pub fn start(&self) -> VirtAddr {
        self.start
    }

    /// Size in bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// One-past-the-end virtual address.
    #[must_use]
    pub fn end(&self) -> VirtAddr {
        self.start.add(self.size)
    }

    /// Allocation options the segment was created with.
    #[must_use]
    pub fn options(&self) -> SegmentOptions {
        self.options
    }

    /// True if `va` lies within the segment.
    #[must_use]
    pub fn contains(&self, va: VirtAddr) -> bool {
        va >= self.start && va < self.end()
    }

    /// Virtual address at byte offset `offset` into the segment.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of bounds.
    #[must_use]
    pub fn addr_at(&self, offset: u64) -> VirtAddr {
        assert!(
            offset < self.size,
            "offset {offset} out of bounds for segment `{}`",
            self.name
        );
        self.start.add(offset)
    }

    /// Number of pages (of the segment's page size) spanned by the segment.
    #[must_use]
    pub fn page_count(&self) -> u64 {
        self.size.div_ceil(self.options.page_size.bytes())
    }
}

/// Result of a demand-paging fault handled by [`AddressSpace::ensure_mapped`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultOutcome {
    /// The address was already mapped; no fault occurred.
    AlreadyMapped(Translation),
    /// A page was populated to satisfy the fault.
    Populated {
        /// The new translation.
        translation: Translation,
        /// Page size of the populated page (also the amount of data that a
        /// demand-paging transfer has to move).
        page_size: PageSize,
    },
}

impl FaultOutcome {
    /// The translation that is now valid for the faulting address.
    #[must_use]
    pub fn translation(&self) -> Translation {
        match self {
            FaultOutcome::AlreadyMapped(t) => *t,
            FaultOutcome::Populated { translation, .. } => *translation,
        }
    }

    /// True if a page had to be populated.
    #[must_use]
    pub fn faulted(&self) -> bool {
        matches!(self, FaultOutcome::Populated { .. })
    }
}

/// Statistics about an address space's demand-paging and migration activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceStats {
    /// Number of demand-paging faults served.
    pub faults: u64,
    /// Bytes transferred by demand paging (sum of faulted page sizes).
    pub fault_bytes: u64,
    /// Number of pages migrated between nodes.
    pub migrations: u64,
    /// Bytes moved by migrations.
    pub migration_bytes: u64,
}

/// A virtual address space with named segments backed by a page table.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    name: String,
    page_table: PageTable,
    segments: HashMap<String, Segment>,
    segment_order: Vec<String>,
    /// `(base VA, name)` pairs sorted by base VA: the deterministic lookup
    /// index behind [`AddressSpace::segment_containing`]. The `segments` map
    /// itself is only ever queried by name — resolving a VA through the map
    /// would make the answer depend on `RandomState` iteration order the
    /// moment two segments claimed the same address.
    by_base: Vec<(u64, String)>,
    next_va: VirtAddr,
    stats: SpaceStats,
}

impl AddressSpace {
    /// Creates an empty address space.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        AddressSpace {
            name: name.into(),
            page_table: PageTable::new(),
            segments: HashMap::new(),
            segment_order: Vec::new(),
            by_base: Vec::new(),
            next_va: VirtAddr::new(SEGMENT_BASE),
            stats: SpaceStats::default(),
        }
    }

    /// Name of the address space (e.g. the owning device).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Allocates a named segment of `size` bytes.
    ///
    /// Segments are 2 MB aligned so that large-page and small-page segments
    /// never share a 2 MB region. Eager segments are fully mapped immediately,
    /// drawing frames from `memory`; lazy segments are mapped on first touch.
    ///
    /// # Errors
    ///
    /// * [`VmemError::EmptySegment`] for a zero-sized request.
    /// * [`VmemError::SegmentExists`] if the name is already in use.
    /// * Frame-allocation errors for eager segments.
    pub fn alloc_segment(
        &mut self,
        name: impl Into<String>,
        size: u64,
        options: SegmentOptions,
        memory: &mut PhysicalMemory,
    ) -> Result<Segment, VmemError> {
        let name = name.into();
        if size == 0 {
            return Err(VmemError::EmptySegment { name });
        }
        if self.segments.contains_key(&name) {
            return Err(VmemError::SegmentExists { name });
        }
        let start = self.next_va.align_up(PageSize::Size2M);
        let segment = Segment {
            name: name.clone(),
            start,
            size,
            options,
        };
        // Reserve the VA range (rounded up to the segment page size).
        let reserved = size.div_ceil(options.page_size.bytes()) * options.page_size.bytes();
        self.next_va = start.add(reserved);

        if options.population == Population::Eager {
            self.populate_range(&segment, 0, size, memory)?;
        }
        self.add_segment(segment.clone());
        Ok(segment)
    }

    /// Registers a segment in the name map and the base-VA-sorted index.
    ///
    /// In debug builds the insertion position is checked against both
    /// neighbours: a new segment overlapping an existing one would make
    /// `segment_containing` ambiguous, so the invariant is asserted here
    /// rather than silently resolved by lookup order.
    fn add_segment(&mut self, segment: Segment) {
        let at = self
            .by_base
            .partition_point(|(base, _)| *base < segment.start.raw());
        #[cfg(debug_assertions)]
        {
            if let Some((_, prev)) = at.checked_sub(1).and_then(|i| self.by_base.get(i)) {
                let prev = &self.segments[prev];
                debug_assert!(
                    prev.end() <= segment.start,
                    "segment `{}` overlaps `{}`",
                    segment.name,
                    prev.name
                );
            }
            if let Some((_, next)) = self.by_base.get(at) {
                let next = &self.segments[next];
                debug_assert!(
                    segment.end() <= next.start,
                    "segment `{}` overlaps `{}`",
                    segment.name,
                    next.name
                );
            }
        }
        let name = segment.name.clone();
        self.by_base.insert(at, (segment.start.raw(), name.clone()));
        self.segments.insert(name.clone(), segment);
        self.segment_order.push(name);
    }

    fn populate_range(
        &mut self,
        segment: &Segment,
        from_offset: u64,
        len: u64,
        memory: &mut PhysicalMemory,
    ) -> Result<(), VmemError> {
        let page_bytes = segment.options.page_size.bytes();
        let first_page = from_offset / page_bytes;
        let last_page = (from_offset + len - 1) / page_bytes;
        for page in first_page..=last_page {
            let va = segment.start.add(page * page_bytes);
            if self.page_table.is_mapped(va) {
                continue;
            }
            let pfn = memory.alloc_page(segment.options.node, segment.options.page_size)?;
            self.page_table
                .map(va, segment.options.page_size, pfn, segment.options.node)?;
        }
        Ok(())
    }

    /// Looks up a segment by name.
    #[must_use]
    pub fn segment(&self, name: &str) -> Option<&Segment> {
        self.segments.get(name)
    }

    /// All segments in allocation order.
    pub fn segments(&self) -> impl Iterator<Item = &Segment> {
        self.segment_order.iter().map(|n| &self.segments[n])
    }

    /// The segment containing `va`, if any.
    ///
    /// Resolved through the base-VA-sorted index: the candidate is the
    /// segment with the greatest base at or below `va` (segments never
    /// overlap, so at most one can contain the address). This keeps the
    /// answer independent of the name map's hash order.
    #[must_use]
    pub fn segment_containing(&self, va: VirtAddr) -> Option<&Segment> {
        let at = self.by_base.partition_point(|(base, _)| *base <= va.raw());
        let (_, name) = at.checked_sub(1).and_then(|i| self.by_base.get(i))?;
        let segment = &self.segments[name];
        segment.contains(va).then_some(segment)
    }

    /// Translates a virtual address.
    ///
    /// # Errors
    ///
    /// Returns [`VmemError::NotMapped`] for unmapped addresses (including
    /// untouched pages of lazy segments).
    pub fn translate(&self, va: VirtAddr) -> Result<Translation, VmemError> {
        self.page_table.translate(va)
    }

    /// Performs a full page-table walk for `va`.
    #[must_use]
    pub fn walk(&self, va: VirtAddr) -> WalkPath {
        self.page_table.walk(va)
    }

    /// True if the 4 KB page containing `va` is mapped.
    #[must_use]
    pub fn is_mapped(&self, va: VirtAddr) -> bool {
        self.page_table.is_mapped(va)
    }

    /// Ensures the page containing `va` is mapped, faulting it in from the
    /// segment's backing node if necessary (demand paging).
    ///
    /// # Errors
    ///
    /// * [`VmemError::NotMapped`] if `va` does not belong to any segment.
    /// * Frame-allocation errors if the backing node is out of memory.
    pub fn ensure_mapped(
        &mut self,
        va: VirtAddr,
        memory: &mut PhysicalMemory,
    ) -> Result<FaultOutcome, VmemError> {
        if let Ok(t) = self.page_table.translate(va) {
            return Ok(FaultOutcome::AlreadyMapped(t));
        }
        let segment = self
            .segment_containing(va)
            .cloned()
            .ok_or(VmemError::NotMapped { va })?;
        let offset = va.offset_from(segment.start());
        self.populate_range(&segment, offset, 1, memory)?;
        let translation = self.page_table.translate(va)?;
        let page_size = segment.options.page_size;
        self.stats.faults += 1;
        self.stats.fault_bytes += page_size.bytes();
        Ok(FaultOutcome::Populated {
            translation,
            page_size,
        })
    }

    /// Migrates the page containing `va` to `dst_node`, allocating a new
    /// backing page there and freeing the old one.
    ///
    /// Returns the translation that was in effect *before* the migration.
    ///
    /// # Errors
    ///
    /// * [`VmemError::NotMapped`] if the page is not mapped.
    /// * Frame-allocation errors if `dst_node` is out of memory.
    pub fn migrate_page(
        &mut self,
        va: VirtAddr,
        dst_node: MemNode,
        memory: &mut PhysicalMemory,
    ) -> Result<Translation, VmemError> {
        let old = self.page_table.translate(va)?;
        if old.node == dst_node {
            return Ok(old);
        }
        let new_pfn = memory.alloc_page(dst_node, old.page_size)?;
        memory.free_page(old.pfn, old.page_size)?;
        self.page_table
            .remap(va.page_base(old.page_size), new_pfn, dst_node)?;
        self.stats.migrations += 1;
        self.stats.migration_bytes += old.page_size.bytes();
        Ok(old)
    }

    /// Distinct 4 KB virtual pages covered by the byte range
    /// `[start, start + len)`.
    #[must_use]
    pub fn pages_in_range(start: VirtAddr, len: u64) -> Vec<VirtPageNum> {
        if len == 0 {
            return Vec::new();
        }
        let first = start.vpn().raw();
        let last = start.add(len - 1).vpn().raw();
        (first..=last).map(VirtPageNum::new).collect()
    }

    /// The underlying page table.
    #[must_use]
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Demand-paging and migration statistics.
    #[must_use]
    pub fn stats(&self) -> SpaceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory() -> PhysicalMemory {
        PhysicalMemory::with_npus(2, 1 << 30)
    }

    #[test]
    fn eager_segment_is_fully_mapped() {
        let mut mem = memory();
        let mut space = AddressSpace::new("npu0");
        let seg = space
            .alloc_segment(
                "ia",
                3 * 4096 + 100,
                SegmentOptions::new(MemNode::Npu(0), PageSize::Size4K),
                &mut mem,
            )
            .unwrap();
        assert_eq!(seg.page_count(), 4);
        for page in 0..4u64 {
            assert!(space.is_mapped(seg.start().add(page * 4096)));
        }
        assert!(!space.is_mapped(seg.start().add(4 * 4096)));
        assert_eq!(mem.used_bytes(MemNode::Npu(0)).unwrap(), 4 * 4096);
    }

    #[test]
    fn lazy_segment_faults_on_touch() {
        let mut mem = memory();
        let mut space = AddressSpace::new("npu0");
        let seg = space
            .alloc_segment(
                "emb",
                1 << 20,
                SegmentOptions::new(MemNode::Host, PageSize::Size4K).lazy(),
                &mut mem,
            )
            .unwrap();
        let va = seg.addr_at(8192 + 17);
        assert!(!space.is_mapped(va));
        let outcome = space.ensure_mapped(va, &mut mem).unwrap();
        assert!(outcome.faulted());
        assert_eq!(outcome.translation().node, MemNode::Host);
        // The second touch does not fault.
        let again = space.ensure_mapped(va, &mut mem).unwrap();
        assert!(!again.faulted());
        assert_eq!(space.stats().faults, 1);
        assert_eq!(space.stats().fault_bytes, 4096);
    }

    #[test]
    fn large_page_segments_fault_2mb_at_a_time() {
        let mut mem = memory();
        let mut space = AddressSpace::new("npu0");
        let seg = space
            .alloc_segment(
                "emb2m",
                8 << 20,
                SegmentOptions::new(MemNode::Npu(1), PageSize::Size2M).lazy(),
                &mut mem,
            )
            .unwrap();
        let outcome = space.ensure_mapped(seg.addr_at(3 << 20), &mut mem).unwrap();
        match outcome {
            FaultOutcome::Populated { page_size, .. } => assert_eq!(page_size, PageSize::Size2M),
            FaultOutcome::AlreadyMapped(_) => panic!("expected a fault"),
        }
        assert_eq!(mem.used_bytes(MemNode::Npu(1)).unwrap(), 2 << 20);
        // Addresses within the same 2 MB page do not fault again.
        assert!(!space
            .ensure_mapped(seg.addr_at((2 << 20) + 5), &mut mem)
            .unwrap()
            .faulted());
    }

    #[test]
    fn segments_do_not_overlap_and_are_2mb_aligned() {
        let mut mem = memory();
        let mut space = AddressSpace::new("npu0");
        let a = space
            .alloc_segment(
                "a",
                5000,
                SegmentOptions::new(MemNode::Npu(0), PageSize::Size4K),
                &mut mem,
            )
            .unwrap();
        let b = space
            .alloc_segment(
                "b",
                5000,
                SegmentOptions::new(MemNode::Npu(0), PageSize::Size4K),
                &mut mem,
            )
            .unwrap();
        assert!(a.start().is_aligned(PageSize::Size2M));
        assert!(b.start().is_aligned(PageSize::Size2M));
        assert!(b.start() >= a.end());
        assert!(!a.contains(b.start()));
        assert_eq!(space.segments().count(), 2);
        assert_eq!(
            space.segment_containing(a.addr_at(100)).unwrap().name(),
            "a"
        );
    }

    #[test]
    fn segment_containing_resolves_through_the_sorted_index() {
        let mut mem = memory();
        let mut space = AddressSpace::new("npu0");
        // Enough segments that a hash-ordered `.values().find()` would visit
        // them in an arbitrary order; the sorted index must find the owner of
        // every boundary address regardless.
        let mut segs = Vec::new();
        for i in 0..32u64 {
            let seg = space
                .alloc_segment(
                    format!("seg{i}"),
                    4096 * (1 + i % 5),
                    SegmentOptions::new(MemNode::Npu(0), PageSize::Size4K),
                    &mut mem,
                )
                .unwrap();
            segs.push(seg);
        }
        for seg in &segs {
            assert_eq!(
                space.segment_containing(seg.start()).unwrap().name(),
                seg.name()
            );
            let last_byte = seg.start().add(seg.size() - 1);
            assert_eq!(
                space.segment_containing(last_byte).unwrap().name(),
                seg.name()
            );
            // One-past-the-end belongs to the 2 MB alignment gap, not `seg`.
            assert_ne!(
                space.segment_containing(seg.end()).map(Segment::name),
                Some(seg.name())
            );
        }
        assert!(space
            .segment_containing(VirtAddr::new(SEGMENT_BASE - 1))
            .is_none());
    }

    #[test]
    fn duplicate_and_empty_segments_rejected() {
        let mut mem = memory();
        let mut space = AddressSpace::new("npu0");
        space
            .alloc_segment(
                "w",
                4096,
                SegmentOptions::new(MemNode::Npu(0), PageSize::Size4K),
                &mut mem,
            )
            .unwrap();
        assert!(matches!(
            space.alloc_segment(
                "w",
                4096,
                SegmentOptions::new(MemNode::Npu(0), PageSize::Size4K),
                &mut mem
            ),
            Err(VmemError::SegmentExists { .. })
        ));
        assert!(matches!(
            space.alloc_segment(
                "empty",
                0,
                SegmentOptions::new(MemNode::Npu(0), PageSize::Size4K),
                &mut mem
            ),
            Err(VmemError::EmptySegment { .. })
        ));
    }

    #[test]
    fn migration_moves_page_between_nodes() {
        let mut mem = memory();
        let mut space = AddressSpace::new("npu0");
        let seg = space
            .alloc_segment(
                "emb",
                16 * 4096,
                SegmentOptions::new(MemNode::Npu(1), PageSize::Size4K),
                &mut mem,
            )
            .unwrap();
        let va = seg.addr_at(4096 * 3 + 7);
        let before = space.translate(va).unwrap();
        assert_eq!(before.node, MemNode::Npu(1));
        let used_before = mem.used_bytes(MemNode::Npu(0)).unwrap();
        space.migrate_page(va, MemNode::Npu(0), &mut mem).unwrap();
        let after = space.translate(va).unwrap();
        assert_eq!(after.node, MemNode::Npu(0));
        assert_eq!(after.pa.frame_offset(), before.pa.frame_offset());
        assert_eq!(mem.used_bytes(MemNode::Npu(0)).unwrap(), used_before + 4096);
        assert_eq!(space.stats().migrations, 1);
        // Migrating to the current node is a no-op.
        space.migrate_page(va, MemNode::Npu(0), &mut mem).unwrap();
        assert_eq!(space.stats().migrations, 1);
    }

    #[test]
    fn fault_outside_any_segment_is_an_error() {
        let mut mem = memory();
        let mut space = AddressSpace::new("npu0");
        let err = space
            .ensure_mapped(VirtAddr::new(0x10), &mut mem)
            .unwrap_err();
        assert!(matches!(err, VmemError::NotMapped { .. }));
    }

    #[test]
    fn pages_in_range_enumerates_touched_pages() {
        let pages = AddressSpace::pages_in_range(VirtAddr::new(0xfff), 2);
        assert_eq!(pages.len(), 2);
        assert_eq!(pages[0].raw(), 0);
        assert_eq!(pages[1].raw(), 1);
        assert!(AddressSpace::pages_in_range(VirtAddr::new(0x1000), 0).is_empty());
        let one = AddressSpace::pages_in_range(VirtAddr::new(0x2000), 4096);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn addr_at_bounds_check() {
        let mut mem = memory();
        let mut space = AddressSpace::new("npu0");
        let seg = space
            .alloc_segment(
                "s",
                4096,
                SegmentOptions::new(MemNode::Npu(0), PageSize::Size4K),
                &mut mem,
            )
            .unwrap();
        assert_eq!(seg.addr_at(0), seg.start());
        let result = std::panic::catch_unwind(|| seg.addr_at(4096));
        assert!(result.is_err());
    }
}
