//! Address-space identifiers (ASIDs) and the tenant context registry.
//!
//! NeuMMU as published models a single unified address space per NPU. A
//! serving deployment, however, time-shares one NPU between many models and
//! users; every tenant then owns a private page table, and all shared
//! translation state (the IOTLB, the pending-translation scoreboard, the
//! per-walker merge buffers) must be *tagged* so that one tenant's entries
//! can neither answer nor evict-by-aliasing another tenant's requests.
//!
//! [`Asid`] is that tag: a small integer identifying one translation context.
//! [`AddressSpaceRegistry`] owns the per-tenant [`AddressSpace`]s and hands
//! out ASIDs densely from zero, so downstream per-tenant accounting can use
//! the raw ASID as a vector index.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::address_space::AddressSpace;

/// An address-space identifier: tags translation state (IOTLB entries, PTS
/// keys, per-tenant counters) with the tenant context that owns it.
///
/// The default/zero ASID is [`Asid::GLOBAL`], the single-tenant context every
/// untagged legacy entry point uses — a single-tenant run through the tagged
/// structures is cycle-identical to the pre-ASID model.
///
/// # Example
///
/// ```
/// use neummu_vmem::Asid;
///
/// let tenant = Asid::new(3);
/// assert_eq!(tenant.raw(), 3);
/// assert!(!tenant.is_global());
/// assert!(Asid::GLOBAL.is_global());
/// assert_eq!(Asid::default(), Asid::GLOBAL);
/// assert_eq!(tenant.to_string(), "asid:3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Asid(u16);

impl Asid {
    /// The single-tenant (legacy) context. Untagged translation entry points
    /// operate on this ASID.
    pub const GLOBAL: Asid = Asid(0);

    /// Creates an ASID from its raw value.
    #[must_use]
    pub const fn new(raw: u16) -> Self {
        Asid(raw)
    }

    /// Raw numeric value.
    #[must_use]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// Raw value widened for use as a vector index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// True for the single-tenant [`Asid::GLOBAL`] context.
    #[must_use]
    pub const fn is_global(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asid:{}", self.0)
    }
}

/// Registry of per-tenant address spaces, each owning a private page table.
///
/// ASIDs are handed out densely from zero in creation order, so the raw ASID
/// doubles as an index into per-tenant result vectors. The registry owns the
/// spaces; the shared MMU structures only ever see the `(Asid, page table)`
/// pair of the tenant whose request is in flight.
///
/// # Example
///
/// ```
/// use neummu_vmem::prelude::*;
///
/// # fn main() -> Result<(), VmemError> {
/// let mut memory = PhysicalMemory::with_npus(1, 1 << 30);
/// let mut registry = AddressSpaceRegistry::new();
/// let a = registry.create("tenant-a");
/// let b = registry.create("tenant-b");
/// assert_ne!(a, b);
///
/// // Identical virtual addresses in different contexts resolve through
/// // different page tables.
/// let opts = SegmentOptions::new(MemNode::Npu(0), PageSize::Size4K);
/// let seg_a = registry.get_mut(a).unwrap().alloc_segment("w", 8192, opts, &mut memory)?;
/// let va = seg_a.start();
/// assert!(registry.get(a).unwrap().is_mapped(va));
/// assert!(!registry.get(b).unwrap().is_mapped(va));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct AddressSpaceRegistry {
    spaces: Vec<AddressSpace>,
}

impl AddressSpaceRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a new, empty address space and returns its ASID.
    ///
    /// # Panics
    ///
    /// Panics if the registry already holds `u16::MAX + 1` contexts (the ASID
    /// space is exhausted).
    pub fn create(&mut self, name: impl Into<String>) -> Asid {
        let raw = u16::try_from(self.spaces.len()).expect("ASID space exhausted");
        self.spaces.push(AddressSpace::new(name));
        Asid::new(raw)
    }

    /// The address space of `asid`, if registered.
    #[must_use]
    pub fn get(&self, asid: Asid) -> Option<&AddressSpace> {
        self.spaces.get(asid.index())
    }

    /// Mutable access to the address space of `asid`, if registered.
    pub fn get_mut(&mut self, asid: Asid) -> Option<&mut AddressSpace> {
        self.spaces.get_mut(asid.index())
    }

    /// Number of registered contexts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spaces.len()
    }

    /// True if no context has been registered yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spaces.is_empty()
    }

    /// Iterates over `(asid, space)` pairs in ASID order.
    pub fn iter(&self) -> impl Iterator<Item = (Asid, &AddressSpace)> {
        self.spaces
            .iter()
            .enumerate()
            .map(|(i, space)| (Asid::new(i as u16), space))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PageSize;
    use crate::address_space::SegmentOptions;
    use crate::frame_alloc::PhysicalMemory;
    use crate::numa::MemNode;

    #[test]
    fn asids_are_dense_and_ordered() {
        let mut registry = AddressSpaceRegistry::new();
        assert!(registry.is_empty());
        let a = registry.create("a");
        let b = registry.create("b");
        let c = registry.create("c");
        assert_eq!((a.raw(), b.raw(), c.raw()), (0, 1, 2));
        assert_eq!(registry.len(), 3);
        assert!(a.is_global());
        let names: Vec<&str> = registry.iter().map(|(_, s)| s.name()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn lookup_by_asid() {
        let mut registry = AddressSpaceRegistry::new();
        let a = registry.create("a");
        assert_eq!(registry.get(a).unwrap().name(), "a");
        assert!(registry.get(Asid::new(7)).is_none());
        assert!(registry.get_mut(Asid::new(7)).is_none());
    }

    #[test]
    fn contexts_are_fully_isolated() {
        let mut memory = PhysicalMemory::with_npus(1, 1 << 30);
        let mut registry = AddressSpaceRegistry::new();
        let a = registry.create("a");
        let b = registry.create("b");
        let opts = SegmentOptions::new(MemNode::Npu(0), PageSize::Size4K);
        let seg = registry
            .get_mut(a)
            .unwrap()
            .alloc_segment("w", 4096, opts, &mut memory)
            .unwrap();
        assert!(registry.get(a).unwrap().is_mapped(seg.start()));
        assert!(!registry.get(b).unwrap().is_mapped(seg.start()));
        // Same allocation order in the other context lands on the same VA
        // (per-context layout is deterministic and context-local).
        let seg_b = registry
            .get_mut(b)
            .unwrap()
            .alloc_segment("w", 4096, opts, &mut memory)
            .unwrap();
        assert_eq!(seg.start(), seg_b.start());
    }

    #[test]
    fn display_and_index() {
        assert_eq!(Asid::GLOBAL.to_string(), "asid:0");
        assert_eq!(Asid::new(512).index(), 512);
    }
}
