//! Error types for the virtual-memory substrate.

use std::error::Error;
use std::fmt;

use crate::addr::{PageSize, VirtAddr, VirtPageNum};
use crate::numa::MemNode;

/// Errors produced by the virtual-memory substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmemError {
    /// A physical-memory node ran out of frames.
    OutOfMemory {
        /// Node on which the allocation was attempted.
        node: MemNode,
        /// Number of contiguous 4 KB frames requested.
        frames_requested: u64,
    },
    /// The requested node does not exist in the [`PhysicalMemory`](crate::PhysicalMemory)
    /// configuration.
    UnknownNode {
        /// The node that was requested.
        node: MemNode,
    },
    /// A mapping already exists for the page.
    AlreadyMapped {
        /// Virtual page that was being mapped.
        vpn: VirtPageNum,
    },
    /// A translation was requested for an unmapped address.
    NotMapped {
        /// The virtual address that missed.
        va: VirtAddr,
    },
    /// A 2 MB mapping was requested at an address that is not 2 MB aligned,
    /// or overlaps an existing 4 KB mapping region.
    MisalignedMapping {
        /// The virtual address of the attempted mapping.
        va: VirtAddr,
        /// The page size of the attempted mapping.
        page_size: PageSize,
    },
    /// A named segment already exists in the address space.
    SegmentExists {
        /// Name of the conflicting segment.
        name: String,
    },
    /// A named segment was not found in the address space.
    SegmentNotFound {
        /// Name of the missing segment.
        name: String,
    },
    /// The requested segment size was zero.
    EmptySegment {
        /// Name of the offending segment.
        name: String,
    },
}

impl fmt::Display for VmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmemError::OutOfMemory {
                node,
                frames_requested,
            } => write!(
                f,
                "out of physical memory on node {node} while allocating {frames_requested} frames"
            ),
            VmemError::UnknownNode { node } => {
                write!(f, "memory node {node} is not configured")
            }
            VmemError::AlreadyMapped { vpn } => {
                write!(f, "virtual page {vpn} is already mapped")
            }
            VmemError::NotMapped { va } => write!(f, "virtual address {va} is not mapped"),
            VmemError::MisalignedMapping { va, page_size } => {
                write!(f, "mapping at {va} is misaligned for page size {page_size}")
            }
            VmemError::SegmentExists { name } => {
                write!(f, "segment `{name}` already exists in this address space")
            }
            VmemError::SegmentNotFound { name } => {
                write!(f, "segment `{name}` was not found in this address space")
            }
            VmemError::EmptySegment { name } => {
                write!(f, "segment `{name}` was requested with zero size")
            }
        }
    }
}

impl Error for VmemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let messages = [
            VmemError::OutOfMemory {
                node: MemNode::Npu(1),
                frames_requested: 42,
            }
            .to_string(),
            VmemError::UnknownNode {
                node: MemNode::Host,
            }
            .to_string(),
            VmemError::AlreadyMapped {
                vpn: VirtPageNum::new(7),
            }
            .to_string(),
            VmemError::NotMapped {
                va: VirtAddr::new(0x1000),
            }
            .to_string(),
            VmemError::MisalignedMapping {
                va: VirtAddr::new(0x1000),
                page_size: PageSize::Size2M,
            }
            .to_string(),
            VmemError::SegmentExists {
                name: "weights".into(),
            }
            .to_string(),
            VmemError::SegmentNotFound {
                name: "acts".into(),
            }
            .to_string(),
            VmemError::EmptySegment {
                name: "empty".into(),
            }
            .to_string(),
        ];
        for msg in messages {
            assert!(!msg.is_empty());
            let first = msg.chars().next().unwrap();
            assert!(
                first.is_lowercase(),
                "error message should start lowercase: {msg}"
            );
            assert!(
                !msg.ends_with('.'),
                "error message should not end with a period: {msg}"
            );
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<VmemError>();
    }
}
