//! NUMA-aware physical frame allocation.
//!
//! [`PhysicalMemory`] models the pool of physical frames available in the
//! system. Each memory node (host memory, each NPU's HBM stack) owns a disjoint
//! physical-address window and hands out 4 KB frames from it. The allocator is
//! a simple bump-plus-free-list design: the simulator only needs frame
//! *identities* and per-node occupancy accounting, not data contents.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::addr::{PageSize, PhysFrameNum, PAGE_SHIFT_4K};
use crate::error::VmemError;
use crate::numa::MemNode;

/// Size of the physical-address window reserved per node (1 TiB), which keeps
/// frame numbers from different nodes disjoint and easy to attribute.
const NODE_WINDOW_BYTES: u64 = 1 << 40;

/// Describes the capacity of one memory node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// The node being described.
    pub node: MemNode,
    /// Capacity of the node in bytes.
    pub capacity_bytes: u64,
}

impl NodeSpec {
    /// Creates a node specification.
    #[must_use]
    pub fn new(node: MemNode, capacity_bytes: u64) -> Self {
        NodeSpec {
            node,
            capacity_bytes,
        }
    }
}

#[derive(Debug, Clone)]
struct NodeState {
    /// First frame number of this node's window.
    base_frame: u64,
    /// Total number of 4 KB frames.
    capacity_frames: u64,
    /// Next never-allocated frame (bump pointer, relative to `base_frame`).
    bump: u64,
    /// Frames that were freed and can be reused (single-frame granularity).
    free_list: Vec<u64>,
    /// Currently allocated frame count.
    allocated: u64,
    /// High-water mark of allocated frames.
    peak_allocated: u64,
}

/// The system's physical memory: a set of NUMA nodes with frame allocators.
#[derive(Debug, Clone)]
pub struct PhysicalMemory {
    nodes: HashMap<MemNode, NodeState>,
    node_order: Vec<MemNode>,
}

impl PhysicalMemory {
    /// Creates a physical memory with the given nodes.
    ///
    /// # Panics
    ///
    /// Panics if the same node appears twice or a node capacity exceeds the
    /// 1 TiB per-node window.
    #[must_use]
    pub fn new(specs: &[NodeSpec]) -> Self {
        let mut nodes = HashMap::new();
        let mut node_order = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            assert!(
                spec.capacity_bytes <= NODE_WINDOW_BYTES,
                "node {} capacity {} exceeds the per-node window",
                spec.node,
                spec.capacity_bytes
            );
            let base_frame = (i as u64 + 1) * (NODE_WINDOW_BYTES >> PAGE_SHIFT_4K);
            let prev = nodes.insert(
                spec.node,
                NodeState {
                    base_frame,
                    capacity_frames: spec.capacity_bytes >> PAGE_SHIFT_4K,
                    bump: 0,
                    free_list: Vec::new(),
                    allocated: 0,
                    peak_allocated: 0,
                },
            );
            assert!(prev.is_none(), "node {} specified twice", spec.node);
            node_order.push(spec.node);
        }
        PhysicalMemory { nodes, node_order }
    }

    /// Creates a typical NeuMMU evaluation system: one host node plus
    /// `num_npus` NPU nodes, with the given per-NPU capacity and a large
    /// (256 GiB) host memory.
    #[must_use]
    pub fn with_npus(num_npus: u16, npu_capacity_bytes: u64) -> Self {
        let mut specs = vec![NodeSpec::new(MemNode::Host, 256 << 30)];
        for i in 0..num_npus {
            specs.push(NodeSpec::new(MemNode::Npu(i), npu_capacity_bytes));
        }
        PhysicalMemory::new(&specs)
    }

    /// Nodes configured in this memory, in declaration order.
    #[must_use]
    pub fn nodes(&self) -> &[MemNode] {
        &self.node_order
    }

    fn node_mut(&mut self, node: MemNode) -> Result<&mut NodeState, VmemError> {
        self.nodes
            .get_mut(&node)
            .ok_or(VmemError::UnknownNode { node })
    }

    fn node_ref(&self, node: MemNode) -> Result<&NodeState, VmemError> {
        self.nodes.get(&node).ok_or(VmemError::UnknownNode { node })
    }

    /// Allocates a single 4 KB frame on `node`.
    ///
    /// # Errors
    ///
    /// Returns [`VmemError::OutOfMemory`] if the node is full and
    /// [`VmemError::UnknownNode`] if the node is not configured.
    pub fn alloc_frame(&mut self, node: MemNode) -> Result<PhysFrameNum, VmemError> {
        let state = self.node_mut(node)?;
        let frame = if let Some(f) = state.free_list.pop() {
            f
        } else if state.bump < state.capacity_frames {
            let f = state.bump;
            state.bump += 1;
            f
        } else {
            return Err(VmemError::OutOfMemory {
                node,
                frames_requested: 1,
            });
        };
        state.allocated += 1;
        state.peak_allocated = state.peak_allocated.max(state.allocated);
        Ok(PhysFrameNum::new(state.base_frame + frame))
    }

    /// Allocates `count` physically contiguous 4 KB frames on `node` and
    /// returns the first frame. Contiguity is required when backing a 2 MB
    /// page (512 frames).
    ///
    /// # Errors
    ///
    /// Returns [`VmemError::OutOfMemory`] if the node does not have `count`
    /// contiguous frames left in its bump region.
    pub fn alloc_contiguous(
        &mut self,
        node: MemNode,
        count: u64,
    ) -> Result<PhysFrameNum, VmemError> {
        if count == 1 {
            return self.alloc_frame(node);
        }
        let state = self.node_mut(node)?;
        if state.bump + count > state.capacity_frames {
            return Err(VmemError::OutOfMemory {
                node,
                frames_requested: count,
            });
        }
        let first = state.bump;
        state.bump += count;
        state.allocated += count;
        state.peak_allocated = state.peak_allocated.max(state.allocated);
        Ok(PhysFrameNum::new(state.base_frame + first))
    }

    /// Allocates the frames backing one page of the given size on `node`.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures from the underlying node.
    pub fn alloc_page(
        &mut self,
        node: MemNode,
        page_size: PageSize,
    ) -> Result<PhysFrameNum, VmemError> {
        let frames = page_size.bytes() >> PAGE_SHIFT_4K;
        self.alloc_contiguous(node, frames)
    }

    /// Returns a frame to its owning node's free list.
    ///
    /// # Errors
    ///
    /// Returns [`VmemError::UnknownNode`] if the frame does not belong to any
    /// configured node.
    pub fn free_frame(&mut self, frame: PhysFrameNum) -> Result<(), VmemError> {
        let node = self.owner_of(frame)?;
        let state = self.node_mut(node)?;
        state.free_list.push(frame.raw() - state.base_frame);
        state.allocated = state.allocated.saturating_sub(1);
        Ok(())
    }

    /// Frees all frames of one page of the given size starting at `first`.
    ///
    /// # Errors
    ///
    /// Returns [`VmemError::UnknownNode`] if a frame does not belong to any
    /// configured node.
    pub fn free_page(&mut self, first: PhysFrameNum, page_size: PageSize) -> Result<(), VmemError> {
        let frames = page_size.bytes() >> PAGE_SHIFT_4K;
        for i in 0..frames {
            self.free_frame(PhysFrameNum::new(first.raw() + i))?;
        }
        Ok(())
    }

    /// Node that owns the given frame.
    ///
    /// # Errors
    ///
    /// Returns [`VmemError::UnknownNode`] if the frame lies outside every
    /// configured node window.
    pub fn owner_of(&self, frame: PhysFrameNum) -> Result<MemNode, VmemError> {
        let frames_per_window = NODE_WINDOW_BYTES >> PAGE_SHIFT_4K;
        // Walk the declaration-order node list, not the map: the windows are
        // disjoint so at most one node matches either way, but iterating the
        // map would be a hash-order traversal for the linter to prove benign.
        for node in &self.node_order {
            let state = &self.nodes[node];
            if frame.raw() >= state.base_frame && frame.raw() < state.base_frame + frames_per_window
            {
                return Ok(*node);
            }
        }
        Err(VmemError::UnknownNode {
            node: MemNode::Host,
        })
    }

    /// Number of bytes currently allocated on `node`.
    ///
    /// # Errors
    ///
    /// Returns [`VmemError::UnknownNode`] if the node is not configured.
    pub fn used_bytes(&self, node: MemNode) -> Result<u64, VmemError> {
        Ok(self.node_ref(node)?.allocated << PAGE_SHIFT_4K)
    }

    /// Peak number of bytes ever allocated on `node`.
    ///
    /// # Errors
    ///
    /// Returns [`VmemError::UnknownNode`] if the node is not configured.
    pub fn peak_bytes(&self, node: MemNode) -> Result<u64, VmemError> {
        Ok(self.node_ref(node)?.peak_allocated << PAGE_SHIFT_4K)
    }

    /// Capacity of `node` in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`VmemError::UnknownNode`] if the node is not configured.
    pub fn capacity_bytes(&self, node: MemNode) -> Result<u64, VmemError> {
        Ok(self.node_ref(node)?.capacity_frames << PAGE_SHIFT_4K)
    }

    /// Remaining free bytes on `node`.
    ///
    /// # Errors
    ///
    /// Returns [`VmemError::UnknownNode`] if the node is not configured.
    pub fn free_bytes(&self, node: MemNode) -> Result<u64, VmemError> {
        let state = self.node_ref(node)?;
        let free_frames = state.capacity_frames - state.bump + state.free_list.len() as u64;
        Ok(free_frames << PAGE_SHIFT_4K)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_memory() -> PhysicalMemory {
        PhysicalMemory::new(&[
            NodeSpec::new(MemNode::Host, 1 << 20),
            NodeSpec::new(MemNode::Npu(0), 1 << 20),
        ])
    }

    #[test]
    fn frames_from_different_nodes_do_not_collide() {
        let mut mem = small_memory();
        let host = mem.alloc_frame(MemNode::Host).unwrap();
        let npu = mem.alloc_frame(MemNode::Npu(0)).unwrap();
        assert_ne!(host, npu);
        assert_eq!(mem.owner_of(host).unwrap(), MemNode::Host);
        assert_eq!(mem.owner_of(npu).unwrap(), MemNode::Npu(0));
    }

    #[test]
    fn allocation_exhausts_and_errors() {
        let mut mem = PhysicalMemory::new(&[NodeSpec::new(MemNode::Npu(0), 3 * 4096)]);
        for _ in 0..3 {
            mem.alloc_frame(MemNode::Npu(0)).unwrap();
        }
        let err = mem.alloc_frame(MemNode::Npu(0)).unwrap_err();
        assert!(matches!(err, VmemError::OutOfMemory { .. }));
    }

    #[test]
    fn freeing_allows_reuse() {
        let mut mem = PhysicalMemory::new(&[NodeSpec::new(MemNode::Npu(0), 2 * 4096)]);
        let a = mem.alloc_frame(MemNode::Npu(0)).unwrap();
        let _b = mem.alloc_frame(MemNode::Npu(0)).unwrap();
        assert!(mem.alloc_frame(MemNode::Npu(0)).is_err());
        mem.free_frame(a).unwrap();
        let c = mem.alloc_frame(MemNode::Npu(0)).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn contiguous_allocation_for_huge_pages() {
        let mut mem = PhysicalMemory::new(&[NodeSpec::new(MemNode::Host, 4 << 20)]);
        let first = mem.alloc_page(MemNode::Host, PageSize::Size2M).unwrap();
        let second = mem.alloc_page(MemNode::Host, PageSize::Size2M).unwrap();
        assert_eq!(second.raw() - first.raw(), 512);
        assert_eq!(mem.used_bytes(MemNode::Host).unwrap(), 4 << 20);
        assert!(mem.alloc_page(MemNode::Host, PageSize::Size2M).is_err());
    }

    #[test]
    fn accounting_tracks_usage_and_peak() {
        let mut mem = small_memory();
        assert_eq!(mem.used_bytes(MemNode::Host).unwrap(), 0);
        let f = mem.alloc_frame(MemNode::Host).unwrap();
        assert_eq!(mem.used_bytes(MemNode::Host).unwrap(), 4096);
        assert_eq!(mem.peak_bytes(MemNode::Host).unwrap(), 4096);
        mem.free_frame(f).unwrap();
        assert_eq!(mem.used_bytes(MemNode::Host).unwrap(), 0);
        assert_eq!(mem.peak_bytes(MemNode::Host).unwrap(), 4096);
        assert_eq!(mem.capacity_bytes(MemNode::Host).unwrap(), 1 << 20);
        assert_eq!(mem.free_bytes(MemNode::Host).unwrap(), 1 << 20);
    }

    #[test]
    fn unknown_node_is_reported() {
        let mut mem = small_memory();
        assert!(matches!(
            mem.alloc_frame(MemNode::Npu(9)),
            Err(VmemError::UnknownNode { .. })
        ));
        assert!(mem.used_bytes(MemNode::Npu(9)).is_err());
    }

    #[test]
    fn with_npus_convenience_constructor() {
        let mem = PhysicalMemory::with_npus(4, 16 << 30);
        assert_eq!(mem.nodes().len(), 5);
        assert_eq!(mem.capacity_bytes(MemNode::Npu(3)).unwrap(), 16 << 30);
        assert_eq!(mem.capacity_bytes(MemNode::Host).unwrap(), 256 << 30);
    }
}
