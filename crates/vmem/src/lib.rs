//! Virtual-memory substrate for the NeuMMU reproduction.
//!
//! This crate provides the pieces of a conventional x86-64 style virtual memory
//! system that the NeuMMU paper assumes as its environment:
//!
//! * typed virtual/physical addresses and page numbers ([`addr`]),
//! * a 4-level radix page table with 4 KB and 2 MB leaf pages ([`page_table`]),
//! * a NUMA-aware physical frame allocator ([`frame_alloc`]),
//! * device address spaces with segment allocation, demand paging and page
//!   migration ([`address_space`]),
//! * address-space identifiers and the multi-tenant context registry
//!   ([`asid`]),
//! * NUMA node identifiers ([`numa`]).
//!
//! The page table is a faithful structural model: every walk reports the exact
//! sequence of page-table entries touched, which the MMU crate uses to count
//! translation-invoked memory accesses (the quantity behind the paper's energy
//! results in Figure 12b and Section IV-D).
//!
//! # Example
//!
//! ```
//! use neummu_vmem::prelude::*;
//!
//! # fn main() -> Result<(), VmemError> {
//! let mut memory = PhysicalMemory::new(&[
//!     NodeSpec::new(MemNode::Host, 4 << 30),
//!     NodeSpec::new(MemNode::Npu(0), 1 << 30),
//! ]);
//! let mut space = AddressSpace::new("npu0");
//! let seg = space.alloc_segment(
//!     "weights",
//!     8 << 20,
//!     SegmentOptions::new(MemNode::Npu(0), PageSize::Size4K),
//!     &mut memory,
//! )?;
//! let translation = space.translate(seg.start())?;
//! assert_eq!(translation.node, MemNode::Npu(0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod addr;
pub mod address_space;
pub mod asid;
pub mod error;
pub mod frame_alloc;
pub mod numa;
pub mod page_table;

pub use addr::{PageSize, PathTag, PhysAddr, PhysFrameNum, VirtAddr, VirtPageNum, WalkIndexLevel};
pub use address_space::{
    AddressSpace, FaultOutcome, Population, Segment, SegmentOptions, SpaceStats,
};
pub use asid::{AddressSpaceRegistry, Asid};
pub use error::VmemError;
pub use frame_alloc::{NodeSpec, PhysicalMemory};
pub use numa::{MemNode, PlacementPolicy};
pub use page_table::{
    pages_2m, pages_4k, PageTable, PageTableStats, TableId, Translation, WalkLevel, WalkPath,
    WalkProbe, WalkStep,
};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::addr::{
        PageSize, PathTag, PhysAddr, PhysFrameNum, VirtAddr, VirtPageNum, WalkIndexLevel,
    };
    pub use crate::address_space::{
        AddressSpace, FaultOutcome, Population, Segment, SegmentOptions, SpaceStats,
    };
    pub use crate::asid::{AddressSpaceRegistry, Asid};
    pub use crate::error::VmemError;
    pub use crate::frame_alloc::{NodeSpec, PhysicalMemory};
    pub use crate::numa::{MemNode, PlacementPolicy};
    pub use crate::page_table::{
        pages_2m, pages_4k, PageTable, PageTableStats, TableId, Translation, WalkLevel, WalkPath,
        WalkProbe, WalkStep,
    };
}
