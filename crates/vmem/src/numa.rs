//! NUMA node identifiers and placement helpers.
//!
//! The NeuMMU case study (Section V) models a system with one capacity-optimized
//! host (CPU) memory and several bandwidth-optimized NPU-local memories. Pages
//! can live on any node, and an MMU-equipped NPU may access remote pages either
//! through fine-grained NUMA loads or by migrating pages into its local memory.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies one memory node in the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MemNode {
    /// Host (CPU-attached, capacity-optimized) memory.
    Host,
    /// Local memory of the NPU with the given index.
    Npu(u16),
}

impl MemNode {
    /// True if this node is NPU-local memory.
    #[must_use]
    pub const fn is_npu(self) -> bool {
        matches!(self, MemNode::Npu(_))
    }

    /// The NPU index, if this is an NPU node.
    #[must_use]
    pub const fn npu_index(self) -> Option<u16> {
        match self {
            MemNode::Npu(i) => Some(i),
            MemNode::Host => None,
        }
    }

    /// True if an access from `accessor` to memory on `self` is local.
    #[must_use]
    pub fn is_local_to(self, accessor: MemNode) -> bool {
        self == accessor
    }
}

impl fmt::Display for MemNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemNode::Host => write!(f, "host"),
            MemNode::Npu(i) => write!(f, "npu{i}"),
        }
    }
}

/// How a multi-device system places the shards of a partitioned data structure
/// (the embedding tables of Section V) across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Everything stays in host memory (the "host-centric" approach of
    /// Section III-A).
    HostOnly,
    /// Shard `i` is placed on `Npu(i % num_npus)` (the "accelerator-centric"
    /// model parallelism of Figure 5).
    RoundRobinNpus {
        /// Number of NPUs participating in the round-robin placement.
        num_npus: u16,
    },
}

impl PlacementPolicy {
    /// Node that owns shard `shard_index` under this policy.
    #[must_use]
    pub fn node_for_shard(self, shard_index: usize) -> MemNode {
        match self {
            PlacementPolicy::HostOnly => MemNode::Host,
            PlacementPolicy::RoundRobinNpus { num_npus } => {
                assert!(
                    num_npus > 0,
                    "round-robin placement requires at least one NPU"
                );
                MemNode::Npu((shard_index % num_npus as usize) as u16)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_display_and_queries() {
        assert_eq!(MemNode::Host.to_string(), "host");
        assert_eq!(MemNode::Npu(3).to_string(), "npu3");
        assert!(MemNode::Npu(0).is_npu());
        assert!(!MemNode::Host.is_npu());
        assert_eq!(MemNode::Npu(7).npu_index(), Some(7));
        assert_eq!(MemNode::Host.npu_index(), None);
    }

    #[test]
    fn locality() {
        assert!(MemNode::Npu(1).is_local_to(MemNode::Npu(1)));
        assert!(!MemNode::Npu(1).is_local_to(MemNode::Npu(2)));
        assert!(!MemNode::Host.is_local_to(MemNode::Npu(0)));
    }

    #[test]
    fn round_robin_placement_cycles_over_npus() {
        let policy = PlacementPolicy::RoundRobinNpus { num_npus: 4 };
        assert_eq!(policy.node_for_shard(0), MemNode::Npu(0));
        assert_eq!(policy.node_for_shard(3), MemNode::Npu(3));
        assert_eq!(policy.node_for_shard(4), MemNode::Npu(0));
        assert_eq!(policy.node_for_shard(9), MemNode::Npu(1));
    }

    #[test]
    fn host_only_placement() {
        let policy = PlacementPolicy::HostOnly;
        for shard in 0..8 {
            assert_eq!(policy.node_for_shard(shard), MemNode::Host);
        }
    }

    #[test]
    #[should_panic(expected = "at least one NPU")]
    fn round_robin_with_zero_npus_panics() {
        let policy = PlacementPolicy::RoundRobinNpus { num_npus: 0 };
        let _ = policy.node_for_shard(0);
    }
}
