//! An x86-64 style 4-level radix page table.
//!
//! The table is a structural model: it stores real per-level nodes and reports,
//! for every walk, exactly which entries were touched ([`WalkPath`]). The MMU
//! crate uses the walk path to
//!
//! * charge one memory access per visited level (Section IV-C of the paper),
//! * decide how many levels a TPreg / translation-path cache hit can skip, and
//! * attribute per-level latency (100 cycles per level in Table I).
//!
//! Interior nodes are stored sparsely (only populated entries are kept), which
//! keeps the model practical even for the multi-hundred-GB embedding tables of
//! Section V while preserving the radix-tree structure exactly.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::addr::{
    PageSize, PathTag, PhysAddr, PhysFrameNum, VirtAddr, VirtPageNum, WalkIndexLevel,
    PAGE_SHIFT_2M, PAGE_SHIFT_4K,
};
use crate::error::VmemError;
use crate::numa::MemNode;

/// Identifies one page-table node (interior table) within a [`PageTable`].
///
/// In real hardware this would be the physical address of the 4 KB table; the
/// model uses a dense id and exposes a synthetic physical address so that
/// physically tagged MMU caches (the UPTC of Section IV-C) can be modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TableId(u32);

impl TableId {
    /// Synthetic physical address of this table node.
    #[must_use]
    pub fn phys_addr(self) -> PhysAddr {
        // Page-table nodes live in a reserved physical window far above any
        // node window used by the frame allocator.
        PhysAddr::new((0x7000_0000_0000u64) + (u64::from(self.0) << PAGE_SHIFT_4K))
    }

    /// Raw index of the table node.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

/// One entry of a page-table node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Entry {
    /// Points to the next-lower-level table.
    Table(TableId),
    /// Leaf mapping.
    Leaf {
        /// First backing frame (4 KB units).
        pfn: PhysFrameNum,
        /// Memory node holding the data.
        node: MemNode,
        /// Leaf page size.
        page_size: PageSize,
    },
}

#[derive(Debug, Clone, Default)]
struct TableNode {
    entries: HashMap<u16, Entry>,
}

/// The result of a successful translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Translation {
    /// Translated physical address.
    pub pa: PhysAddr,
    /// First frame of the containing page.
    pub pfn: PhysFrameNum,
    /// Page size of the mapping that was hit.
    pub page_size: PageSize,
    /// Memory node holding the page.
    pub node: MemNode,
}

/// What a walk found at one level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalkLevel {
    /// The entry pointed at a next-level table.
    NextTable {
        /// The table the entry points to.
        next: TableId,
    },
    /// The entry was a leaf mapping.
    Leaf {
        /// Page size of the leaf.
        page_size: PageSize,
    },
    /// The entry was not present (translation fault).
    NotPresent,
}

/// One step of a page-table walk: the access to a single page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkStep {
    /// The level whose table was accessed (L4 is the root).
    pub level: WalkIndexLevel,
    /// The table node that was read.
    pub table: TableId,
    /// The 9-bit index used within that table.
    pub index: u16,
    /// What was found.
    pub outcome: WalkLevel,
}

/// The full trace of one page-table walk.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkPath {
    /// The virtual address that was walked.
    pub va: VirtAddr,
    /// Entry accesses in walk order (root first).
    pub steps: Vec<WalkStep>,
    /// The translation, if the walk succeeded.
    pub translation: Option<Translation>,
}

impl WalkPath {
    /// Number of page-table memory accesses this walk performed.
    #[must_use]
    pub fn memory_accesses(&self) -> u32 {
        self.steps.len() as u32
    }

    /// True if the walk reached a leaf mapping.
    #[must_use]
    pub fn is_hit(&self) -> bool {
        self.translation.is_some()
    }

    /// The L4/L3/L2 path tag of the walked address.
    #[must_use]
    pub fn path_tag(&self) -> PathTag {
        PathTag::of(self.va)
    }
}

/// Aggregate statistics about the page table's structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageTableStats {
    /// Number of interior table nodes allocated (including the root).
    pub tables: u64,
    /// Number of 4 KB leaf mappings.
    pub leaf_4k: u64,
    /// Number of 2 MB leaf mappings.
    pub leaf_2m: u64,
}

impl PageTableStats {
    /// Total bytes mapped by the table.
    #[must_use]
    pub fn mapped_bytes(&self) -> u64 {
        self.leaf_4k * PageSize::Size4K.bytes() + self.leaf_2m * PageSize::Size2M.bytes()
    }
}

/// A 4-level radix page table with 4 KB and 2 MB leaves.
#[derive(Debug, Clone)]
pub struct PageTable {
    nodes: Vec<TableNode>,
    stats: PageTableStats,
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PageTable {
    /// Creates an empty page table (root node only).
    #[must_use]
    pub fn new() -> Self {
        PageTable {
            nodes: vec![TableNode::default()],
            stats: PageTableStats {
                tables: 1,
                ..PageTableStats::default()
            },
        }
    }

    const ROOT: TableId = TableId(0);

    fn alloc_node(&mut self) -> TableId {
        let id = TableId(self.nodes.len() as u32);
        self.nodes.push(TableNode::default());
        self.stats.tables += 1;
        id
    }

    /// Maps one page of the given size starting at `va` to the frame(s)
    /// beginning at `pfn` on `node`.
    ///
    /// # Errors
    ///
    /// * [`VmemError::MisalignedMapping`] if `va` is not aligned to `page_size`.
    /// * [`VmemError::AlreadyMapped`] if any part of the range is mapped.
    pub fn map(
        &mut self,
        va: VirtAddr,
        page_size: PageSize,
        pfn: PhysFrameNum,
        node: MemNode,
    ) -> Result<(), VmemError> {
        if !va.is_aligned(page_size) {
            return Err(VmemError::MisalignedMapping { va, page_size });
        }
        // Descend, allocating interior nodes, down to the level that holds the leaf.
        let leaf_level = match page_size {
            PageSize::Size4K => WalkIndexLevel::L1,
            PageSize::Size2M => WalkIndexLevel::L2,
        };
        let mut current = Self::ROOT;
        for level in WalkIndexLevel::WALK_ORDER {
            let index = va.level_index(level);
            if level == leaf_level {
                let table = &mut self.nodes[current.0 as usize];
                if table.entries.contains_key(&index) {
                    return Err(VmemError::AlreadyMapped { vpn: va.vpn() });
                }
                table.entries.insert(
                    index,
                    Entry::Leaf {
                        pfn,
                        node,
                        page_size,
                    },
                );
                match page_size {
                    PageSize::Size4K => self.stats.leaf_4k += 1,
                    PageSize::Size2M => self.stats.leaf_2m += 1,
                }
                return Ok(());
            }
            let existing = self.nodes[current.0 as usize].entries.get(&index).copied();
            current = match existing {
                Some(Entry::Table(next)) => next,
                Some(Entry::Leaf { .. }) => {
                    // A larger page already covers this range.
                    return Err(VmemError::AlreadyMapped { vpn: va.vpn() });
                }
                None => {
                    let next = self.alloc_node();
                    self.nodes[current.0 as usize]
                        .entries
                        .insert(index, Entry::Table(next));
                    next
                }
            };
        }
        unreachable!("walk order always reaches the leaf level");
    }

    /// Removes the mapping covering `va` and returns its previous leaf.
    ///
    /// # Errors
    ///
    /// Returns [`VmemError::NotMapped`] if no mapping covers `va`.
    pub fn unmap(&mut self, va: VirtAddr) -> Result<Translation, VmemError> {
        let path = self.walk(va);
        let translation = path.translation.ok_or(VmemError::NotMapped { va })?;
        let leaf_step = *path
            .steps
            .last()
            .expect("successful walk has at least one step");
        let table = &mut self.nodes[leaf_step.table.0 as usize];
        table.entries.remove(&leaf_step.index);
        match translation.page_size {
            PageSize::Size4K => self.stats.leaf_4k -= 1,
            PageSize::Size2M => self.stats.leaf_2m -= 1,
        }
        Ok(translation)
    }

    /// Changes the backing frame/node of an existing mapping (page migration).
    ///
    /// # Errors
    ///
    /// Returns [`VmemError::NotMapped`] if no mapping covers `va`.
    pub fn remap(
        &mut self,
        va: VirtAddr,
        new_pfn: PhysFrameNum,
        new_node: MemNode,
    ) -> Result<Translation, VmemError> {
        let path = self.walk(va);
        let old = path.translation.ok_or(VmemError::NotMapped { va })?;
        let leaf_step = *path
            .steps
            .last()
            .expect("successful walk has at least one step");
        let table = &mut self.nodes[leaf_step.table.0 as usize];
        table.entries.insert(
            leaf_step.index,
            Entry::Leaf {
                pfn: new_pfn,
                node: new_node,
                page_size: old.page_size,
            },
        );
        Ok(old)
    }

    /// Walks the page table for `va`, reporting every entry access.
    #[must_use]
    pub fn walk(&self, va: VirtAddr) -> WalkPath {
        let mut steps = Vec::with_capacity(4);
        let mut current = Self::ROOT;
        for level in WalkIndexLevel::WALK_ORDER {
            let index = va.level_index(level);
            let entry = self.nodes[current.0 as usize].entries.get(&index).copied();
            match entry {
                Some(Entry::Table(next)) => {
                    steps.push(WalkStep {
                        level,
                        table: current,
                        index,
                        outcome: WalkLevel::NextTable { next },
                    });
                    current = next;
                }
                Some(Entry::Leaf {
                    pfn,
                    node,
                    page_size,
                }) => {
                    steps.push(WalkStep {
                        level,
                        table: current,
                        index,
                        outcome: WalkLevel::Leaf { page_size },
                    });
                    let offset = va.page_offset(page_size);
                    let pa = PhysAddr::new(pfn.base_addr().raw() + offset);
                    return WalkPath {
                        va,
                        steps,
                        translation: Some(Translation {
                            pa,
                            pfn,
                            page_size,
                            node,
                        }),
                    };
                }
                None => {
                    steps.push(WalkStep {
                        level,
                        table: current,
                        index,
                        outcome: WalkLevel::NotPresent,
                    });
                    return WalkPath {
                        va,
                        steps,
                        translation: None,
                    };
                }
            }
        }
        WalkPath {
            va,
            steps,
            translation: None,
        }
    }

    /// Walks the page table starting below the L2 level, as a PTW whose
    /// TPreg/translation-path cache already holds the L4/L3/L2 entries would.
    ///
    /// Returns the walk steps actually performed (at most the L1 access for a
    /// 4 KB mapping; an empty step list for a 2 MB mapping whose leaf lives at
    /// L2 and is therefore covered by the cached path).
    #[must_use]
    pub fn walk_from_cached_path(&self, va: VirtAddr) -> WalkPath {
        let full = self.walk(va);
        let skipped: Vec<WalkStep> = full
            .steps
            .iter()
            .copied()
            .filter(|s| s.level == WalkIndexLevel::L1)
            .collect();
        WalkPath {
            va,
            steps: skipped,
            translation: full.translation,
        }
    }

    /// Translates `va` without recording walk steps.
    ///
    /// # Errors
    ///
    /// Returns [`VmemError::NotMapped`] if no mapping covers `va`.
    pub fn translate(&self, va: VirtAddr) -> Result<Translation, VmemError> {
        self.walk(va).translation.ok_or(VmemError::NotMapped { va })
    }

    /// True if `va` is covered by a mapping.
    #[must_use]
    pub fn is_mapped(&self, va: VirtAddr) -> bool {
        self.walk(va).is_hit()
    }

    /// True if the 4 KB virtual page is covered by a mapping.
    #[must_use]
    pub fn is_vpn_mapped(&self, vpn: VirtPageNum) -> bool {
        self.is_mapped(vpn.base_addr())
    }

    /// Structural statistics of the table.
    #[must_use]
    pub fn stats(&self) -> PageTableStats {
        self.stats
    }
}

/// Number of 4 KB pages needed to cover `bytes`.
#[must_use]
pub fn pages_4k(bytes: u64) -> u64 {
    bytes.div_ceil(1 << PAGE_SHIFT_4K)
}

/// Number of 2 MB pages needed to cover `bytes`.
#[must_use]
pub fn pages_2m(bytes: u64) -> u64 {
    bytes.div_ceil(1 << PAGE_SHIFT_2M)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_4k(pt: &mut PageTable, va: u64, pfn: u64) {
        pt.map(
            VirtAddr::new(va),
            PageSize::Size4K,
            PhysFrameNum::new(pfn),
            MemNode::Npu(0),
        )
        .unwrap();
    }

    #[test]
    fn map_and_translate_4k() {
        let mut pt = PageTable::new();
        map_4k(&mut pt, 0x40_0000, 0x99);
        let t = pt.translate(VirtAddr::new(0x40_0123)).unwrap();
        assert_eq!(t.pa.raw(), (0x99 << 12) | 0x123);
        assert_eq!(t.page_size, PageSize::Size4K);
        assert_eq!(t.node, MemNode::Npu(0));
    }

    #[test]
    fn walk_of_4k_mapping_takes_four_accesses() {
        let mut pt = PageTable::new();
        map_4k(&mut pt, 0x40_0000, 0x99);
        let path = pt.walk(VirtAddr::new(0x40_0000));
        assert!(path.is_hit());
        assert_eq!(path.memory_accesses(), 4);
        assert_eq!(path.steps[0].level, WalkIndexLevel::L4);
        assert_eq!(path.steps[3].level, WalkIndexLevel::L1);
        assert!(matches!(
            path.steps[3].outcome,
            WalkLevel::Leaf {
                page_size: PageSize::Size4K
            }
        ));
    }

    #[test]
    fn walk_of_2m_mapping_takes_three_accesses() {
        let mut pt = PageTable::new();
        pt.map(
            VirtAddr::new(0x20_0000),
            PageSize::Size2M,
            PhysFrameNum::new(0x1000),
            MemNode::Host,
        )
        .unwrap();
        let path = pt.walk(VirtAddr::new(0x20_0000 + 0x1234));
        assert!(path.is_hit());
        assert_eq!(path.memory_accesses(), 3);
        let t = path.translation.unwrap();
        assert_eq!(t.pa.raw(), (0x1000u64 << 12) + 0x1234);
        assert_eq!(t.page_size, PageSize::Size2M);
    }

    #[test]
    fn walk_miss_reports_partial_path() {
        let pt = PageTable::new();
        let path = pt.walk(VirtAddr::new(0x1234_5678));
        assert!(!path.is_hit());
        assert_eq!(path.memory_accesses(), 1);
        assert!(matches!(path.steps[0].outcome, WalkLevel::NotPresent));
    }

    #[test]
    fn misaligned_2m_mapping_rejected() {
        let mut pt = PageTable::new();
        let err = pt
            .map(
                VirtAddr::new(0x1000),
                PageSize::Size2M,
                PhysFrameNum::new(1),
                MemNode::Host,
            )
            .unwrap_err();
        assert!(matches!(err, VmemError::MisalignedMapping { .. }));
    }

    #[test]
    fn double_mapping_rejected() {
        let mut pt = PageTable::new();
        map_4k(&mut pt, 0x1000, 1);
        let err = pt
            .map(
                VirtAddr::new(0x1000),
                PageSize::Size4K,
                PhysFrameNum::new(2),
                MemNode::Host,
            )
            .unwrap_err();
        assert!(matches!(err, VmemError::AlreadyMapped { .. }));
        // Mapping a 4 KB page under an existing 2 MB page is also rejected.
        pt.map(
            VirtAddr::new(0x20_0000),
            PageSize::Size2M,
            PhysFrameNum::new(3),
            MemNode::Host,
        )
        .unwrap();
        let err = pt
            .map(
                VirtAddr::new(0x20_1000),
                PageSize::Size4K,
                PhysFrameNum::new(4),
                MemNode::Host,
            )
            .unwrap_err();
        assert!(matches!(err, VmemError::AlreadyMapped { .. }));
    }

    #[test]
    fn unmap_removes_mapping_and_updates_stats() {
        let mut pt = PageTable::new();
        map_4k(&mut pt, 0x5000, 42);
        assert_eq!(pt.stats().leaf_4k, 1);
        let old = pt.unmap(VirtAddr::new(0x5000)).unwrap();
        assert_eq!(old.pfn.raw(), 42);
        assert_eq!(pt.stats().leaf_4k, 0);
        assert!(!pt.is_mapped(VirtAddr::new(0x5000)));
        assert!(matches!(
            pt.unmap(VirtAddr::new(0x5000)),
            Err(VmemError::NotMapped { .. })
        ));
    }

    #[test]
    fn remap_changes_frame_and_node() {
        let mut pt = PageTable::new();
        map_4k(&mut pt, 0x5000, 42);
        let old = pt
            .remap(
                VirtAddr::new(0x5000),
                PhysFrameNum::new(100),
                MemNode::Npu(3),
            )
            .unwrap();
        assert_eq!(old.pfn.raw(), 42);
        let t = pt.translate(VirtAddr::new(0x5abc)).unwrap();
        assert_eq!(t.pfn.raw(), 100);
        assert_eq!(t.node, MemNode::Npu(3));
        assert_eq!(t.pa.raw(), (100u64 << 12) | 0xabc);
    }

    #[test]
    fn adjacent_pages_share_upper_tables() {
        let mut pt = PageTable::new();
        map_4k(&mut pt, 0x10_0000, 1);
        let tables_after_first = pt.stats().tables;
        map_4k(&mut pt, 0x10_1000, 2);
        // The second page is in the same L1 table: no new interior nodes.
        assert_eq!(pt.stats().tables, tables_after_first);
        let a = pt.walk(VirtAddr::new(0x10_0000));
        let b = pt.walk(VirtAddr::new(0x10_1000));
        for i in 0..3 {
            assert_eq!(a.steps[i].table, b.steps[i].table);
        }
    }

    #[test]
    fn walk_from_cached_path_skips_upper_levels() {
        let mut pt = PageTable::new();
        map_4k(&mut pt, 0x40_0000, 7);
        let partial = pt.walk_from_cached_path(VirtAddr::new(0x40_0000));
        assert!(partial.is_hit());
        assert_eq!(partial.memory_accesses(), 1);
        pt.map(
            VirtAddr::new(0x8000_0000),
            PageSize::Size2M,
            PhysFrameNum::new(0x2000),
            MemNode::Host,
        )
        .unwrap();
        let partial2m = pt.walk_from_cached_path(VirtAddr::new(0x8000_0000));
        assert!(partial2m.is_hit());
        assert_eq!(partial2m.memory_accesses(), 0);
    }

    #[test]
    fn stats_mapped_bytes() {
        let mut pt = PageTable::new();
        map_4k(&mut pt, 0x1000, 1);
        pt.map(
            VirtAddr::new(0x20_0000),
            PageSize::Size2M,
            PhysFrameNum::new(512),
            MemNode::Host,
        )
        .unwrap();
        assert_eq!(pt.stats().mapped_bytes(), 4096 + 2 * 1024 * 1024);
    }

    #[test]
    fn page_count_helpers() {
        assert_eq!(pages_4k(1), 1);
        assert_eq!(pages_4k(4096), 1);
        assert_eq!(pages_4k(4097), 2);
        assert_eq!(pages_2m(2 * 1024 * 1024 + 1), 2);
    }

    #[test]
    fn table_ids_have_distinct_synthetic_addresses() {
        let a = TableId(0).phys_addr();
        let b = TableId(1).phys_addr();
        assert_ne!(a, b);
        assert_eq!(b.raw() - a.raw(), 4096);
    }
}
