//! An x86-64 style 4-level radix page table.
//!
//! The table is a structural model: it stores real per-level nodes and reports,
//! for every walk, exactly which entries were touched ([`WalkPath`]). The MMU
//! crate uses the walk path to
//!
//! * charge one memory access per visited level (Section IV-C of the paper),
//! * decide how many levels a TPreg / translation-path cache hit can skip, and
//! * attribute per-level latency (100 cycles per level in Table I).
//!
//! Interior nodes are stored sparsely (only populated entries are kept), which
//! keeps the model practical even for the multi-hundred-GB embedding tables of
//! Section V while preserving the radix-tree structure exactly.
//!
//! Two query paths exist. [`PageTable::walk`] records every entry access as a
//! [`WalkPath`] — an allocating trace used by tests, inspection tooling and
//! the MMU-cache studies. [`PageTable::probe`] performs the same traversal but
//! returns a `Copy` [`WalkProbe`] without touching the heap; it is the hot
//! path the translation engines use, since they only need the leaf, the level
//! count and the final entry access.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::addr::{
    PageSize, PathTag, PhysAddr, PhysFrameNum, VirtAddr, VirtPageNum, WalkIndexLevel,
    PAGE_SHIFT_2M, PAGE_SHIFT_4K,
};
use crate::error::VmemError;
use crate::numa::MemNode;

/// Identifies one page-table node (interior table) within a [`PageTable`].
///
/// In real hardware this would be the physical address of the 4 KB table; the
/// model uses a dense id and exposes a synthetic physical address so that
/// physically tagged MMU caches (the UPTC of Section IV-C) can be modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TableId(u32);

impl TableId {
    /// Synthetic physical address of this table node.
    #[must_use]
    pub fn phys_addr(self) -> PhysAddr {
        // Page-table nodes live in a reserved physical window far above any
        // node window used by the frame allocator.
        PhysAddr::new((0x7000_0000_0000u64) + (u64::from(self.0) << PAGE_SHIFT_4K))
    }

    /// Raw index of the table node.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

/// One entry of a page-table node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Entry {
    /// Points to the next-lower-level table.
    Table(TableId),
    /// Leaf mapping.
    Leaf {
        /// First backing frame (4 KB units).
        pfn: PhysFrameNum,
        /// Memory node holding the data.
        node: MemNode,
        /// Leaf page size.
        page_size: PageSize,
    },
}

/// One page-table node: the populated entries, sorted by their 9-bit index.
///
/// A sorted vec with binary search replaces the previous per-node `HashMap`:
/// nodes hold at most 512 entries and are probed orders of magnitude more
/// often than they are mutated, so the compact, cache-friendly layout wins on
/// the translation hot path while `O(n)` inserts stay negligible.
#[derive(Debug, Clone, Default)]
struct TableNode {
    entries: Vec<(u16, Entry)>,
}

impl TableNode {
    #[inline]
    fn slot_of(&self, index: u16) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&index, |&(i, _)| i)
    }

    #[inline]
    fn get(&self, index: u16) -> Option<Entry> {
        self.slot_of(index).ok().map(|slot| self.entries[slot].1)
    }

    /// Inserts `entry` at `index`; returns `false` if the index is occupied.
    fn try_insert(&mut self, index: u16, entry: Entry) -> bool {
        match self.slot_of(index) {
            Ok(_) => false,
            Err(slot) => {
                self.entries.insert(slot, (index, entry));
                true
            }
        }
    }

    /// Inserts or replaces the entry at `index`.
    fn set(&mut self, index: u16, entry: Entry) {
        match self.slot_of(index) {
            Ok(slot) => self.entries[slot].1 = entry,
            Err(slot) => self.entries.insert(slot, (index, entry)),
        }
    }

    fn remove(&mut self, index: u16) {
        if let Ok(slot) = self.slot_of(index) {
            self.entries.remove(slot);
        }
    }
}

/// The result of a successful translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Translation {
    /// Translated physical address.
    pub pa: PhysAddr,
    /// First frame of the containing page.
    pub pfn: PhysFrameNum,
    /// Page size of the mapping that was hit.
    pub page_size: PageSize,
    /// Memory node holding the page.
    pub node: MemNode,
}

/// What a walk found at one level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalkLevel {
    /// The entry pointed at a next-level table.
    NextTable {
        /// The table the entry points to.
        next: TableId,
    },
    /// The entry was a leaf mapping.
    Leaf {
        /// Page size of the leaf.
        page_size: PageSize,
    },
    /// The entry was not present (translation fault).
    NotPresent,
}

/// One step of a page-table walk: the access to a single page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkStep {
    /// The level whose table was accessed (L4 is the root).
    pub level: WalkIndexLevel,
    /// The table node that was read.
    pub table: TableId,
    /// The 9-bit index used within that table.
    pub index: u16,
    /// What was found.
    pub outcome: WalkLevel,
}

/// The full trace of one page-table walk.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkPath {
    /// The virtual address that was walked.
    pub va: VirtAddr,
    /// Entry accesses in walk order (root first).
    pub steps: Vec<WalkStep>,
    /// The translation, if the walk succeeded.
    pub translation: Option<Translation>,
}

impl WalkPath {
    /// Number of page-table memory accesses this walk performed.
    #[must_use]
    pub fn memory_accesses(&self) -> u32 {
        self.steps.len() as u32
    }

    /// True if the walk reached a leaf mapping.
    #[must_use]
    pub fn is_hit(&self) -> bool {
        self.translation.is_some()
    }

    /// The L4/L3/L2 path tag of the walked address.
    #[must_use]
    pub fn path_tag(&self) -> PathTag {
        PathTag::of(self.va)
    }
}

/// The allocation-free result of a [`PageTable::probe`].
///
/// A probe traverses exactly the entries a full [`PageTable::walk`] would,
/// but records only what the translation engines need — the final entry
/// access, the number of levels touched and the translation — in a `Copy`
/// value, so the hot path never touches the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkProbe {
    /// The virtual address that was probed.
    pub va: VirtAddr,
    /// The final entry access of the walk: the leaf for a hit, the missing
    /// entry for a miss.
    pub last_step: WalkStep,
    /// The translation, if the probe reached a leaf mapping.
    pub translation: Option<Translation>,
}

impl WalkProbe {
    /// True if the probe reached a leaf mapping.
    #[must_use]
    pub fn is_hit(&self) -> bool {
        self.translation.is_some()
    }

    /// Number of page-table memory accesses the walk performed. The walk
    /// stops at the level of its final access, so the root-first access count
    /// follows directly from that level (L4 → 1, ..., L1 → 4).
    #[must_use]
    pub fn memory_accesses(&self) -> u32 {
        5 - self.last_step.level.as_number()
    }

    /// Number of accesses a PTW whose TPreg/path cache already holds the
    /// L4/L3/L2 entries performs: only the L1 access remains (1 for 4 KB
    /// leaves and 4 KB misses detected at L1, 0 otherwise).
    #[must_use]
    pub fn cached_path_accesses(&self) -> u32 {
        u32::from(self.last_step.level == WalkIndexLevel::L1)
    }

    /// The L4/L3/L2 path tag of the probed address.
    #[must_use]
    pub fn path_tag(&self) -> PathTag {
        PathTag::of(self.va)
    }
}

/// Aggregate statistics about the page table's structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageTableStats {
    /// Number of interior table nodes allocated (including the root).
    pub tables: u64,
    /// Number of 4 KB leaf mappings.
    pub leaf_4k: u64,
    /// Number of 2 MB leaf mappings.
    pub leaf_2m: u64,
}

impl PageTableStats {
    /// Total bytes mapped by the table.
    #[must_use]
    pub fn mapped_bytes(&self) -> u64 {
        self.leaf_4k * PageSize::Size4K.bytes() + self.leaf_2m * PageSize::Size2M.bytes()
    }
}

/// Process-wide source of mapped-ness revision stamps. Every draw is unique,
/// so a revision identifies one mapped-ness state of one table: two equal
/// revisions can only be snapshots of the same state (a table and its
/// unmutated clone), never two independently mutated tables that happen to
/// have seen the same number of operations.
static NEXT_REVISION: AtomicU64 = AtomicU64::new(1);

fn fresh_revision() -> u64 {
    NEXT_REVISION.fetch_add(1, Ordering::Relaxed)
}

/// A 4-level radix page table with 4 KB and 2 MB leaves.
#[derive(Debug, Clone)]
pub struct PageTable {
    nodes: Vec<TableNode>,
    stats: PageTableStats,
    /// Stamp of the table's current mapped-ness state; see
    /// [`PageTable::revision`].
    revision: u64,
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PageTable {
    /// Creates an empty page table (root node only).
    #[must_use]
    pub fn new() -> Self {
        PageTable {
            nodes: vec![TableNode::default()],
            stats: PageTableStats {
                tables: 1,
                ..PageTableStats::default()
            },
            revision: fresh_revision(),
        }
    }

    /// Stamp of the table's *mapped-ness* state: re-drawn (from a process-wide
    /// unique source) on every successful [`PageTable::map`] and
    /// [`PageTable::unmap`], and untouched by [`PageTable::remap`] (migration
    /// changes the backing frame/node but not whether an address is mapped).
    /// A cheap, sound version stamp for mapped-ness memos: equal revisions
    /// guarantee identical `is_mapped` answers for every address — across
    /// tables too, since stamps are never reused (a clone shares its
    /// original's stamp exactly until either mutates, which is precisely when
    /// their mapped-ness states coincide).
    #[must_use]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    const ROOT: TableId = TableId(0);

    fn alloc_node(&mut self) -> TableId {
        let id = TableId(self.nodes.len() as u32);
        self.nodes.push(TableNode::default());
        self.stats.tables += 1;
        id
    }

    /// Maps one page of the given size starting at `va` to the frame(s)
    /// beginning at `pfn` on `node`.
    ///
    /// # Errors
    ///
    /// * [`VmemError::MisalignedMapping`] if `va` is not aligned to `page_size`.
    /// * [`VmemError::AlreadyMapped`] if any part of the range is mapped.
    pub fn map(
        &mut self,
        va: VirtAddr,
        page_size: PageSize,
        pfn: PhysFrameNum,
        node: MemNode,
    ) -> Result<(), VmemError> {
        if !va.is_aligned(page_size) {
            return Err(VmemError::MisalignedMapping { va, page_size });
        }
        // Descend, allocating interior nodes, down to the level that holds the leaf.
        let leaf_level = match page_size {
            PageSize::Size4K => WalkIndexLevel::L1,
            PageSize::Size2M => WalkIndexLevel::L2,
        };
        let mut current = Self::ROOT;
        for level in WalkIndexLevel::WALK_ORDER {
            let index = va.level_index(level);
            if level == leaf_level {
                let inserted = self.nodes[current.0 as usize].try_insert(
                    index,
                    Entry::Leaf {
                        pfn,
                        node,
                        page_size,
                    },
                );
                if !inserted {
                    return Err(VmemError::AlreadyMapped { vpn: va.vpn() });
                }
                match page_size {
                    PageSize::Size4K => self.stats.leaf_4k += 1,
                    PageSize::Size2M => self.stats.leaf_2m += 1,
                }
                self.revision = fresh_revision();
                return Ok(());
            }
            let existing = self.nodes[current.0 as usize].get(index);
            current = match existing {
                Some(Entry::Table(next)) => next,
                Some(Entry::Leaf { .. }) => {
                    // A larger page already covers this range.
                    return Err(VmemError::AlreadyMapped { vpn: va.vpn() });
                }
                None => {
                    let next = self.alloc_node();
                    self.nodes[current.0 as usize].try_insert(index, Entry::Table(next));
                    next
                }
            };
        }
        unreachable!("walk order always reaches the leaf level");
    }

    /// Removes the mapping covering `va` and returns its previous leaf.
    ///
    /// # Errors
    ///
    /// Returns [`VmemError::NotMapped`] if no mapping covers `va`.
    pub fn unmap(&mut self, va: VirtAddr) -> Result<Translation, VmemError> {
        let probe = self.probe(va);
        let translation = probe.translation.ok_or(VmemError::NotMapped { va })?;
        let leaf_step = probe.last_step;
        self.nodes[leaf_step.table.0 as usize].remove(leaf_step.index);
        match translation.page_size {
            PageSize::Size4K => self.stats.leaf_4k -= 1,
            PageSize::Size2M => self.stats.leaf_2m -= 1,
        }
        self.revision = fresh_revision();
        Ok(translation)
    }

    /// Changes the backing frame/node of an existing mapping (page migration).
    ///
    /// # Errors
    ///
    /// Returns [`VmemError::NotMapped`] if no mapping covers `va`.
    pub fn remap(
        &mut self,
        va: VirtAddr,
        new_pfn: PhysFrameNum,
        new_node: MemNode,
    ) -> Result<Translation, VmemError> {
        let probe = self.probe(va);
        let old = probe.translation.ok_or(VmemError::NotMapped { va })?;
        let leaf_step = probe.last_step;
        self.nodes[leaf_step.table.0 as usize].set(
            leaf_step.index,
            Entry::Leaf {
                pfn: new_pfn,
                node: new_node,
                page_size: old.page_size,
            },
        );
        Ok(old)
    }

    /// Probes the page table for `va` without allocating.
    ///
    /// This is the translation hot path: it traverses exactly the entries
    /// [`PageTable::walk`] would but returns a `Copy` [`WalkProbe`] instead of
    /// materializing the step trace.
    #[inline]
    #[must_use]
    pub fn probe(&self, va: VirtAddr) -> WalkProbe {
        let mut current = Self::ROOT;
        for level in WalkIndexLevel::WALK_ORDER {
            let index = va.level_index(level);
            match self.nodes[current.0 as usize].get(index) {
                Some(Entry::Table(next)) => current = next,
                Some(Entry::Leaf {
                    pfn,
                    node,
                    page_size,
                }) => {
                    let offset = va.page_offset(page_size);
                    let pa = PhysAddr::new(pfn.base_addr().raw() + offset);
                    return WalkProbe {
                        va,
                        last_step: WalkStep {
                            level,
                            table: current,
                            index,
                            outcome: WalkLevel::Leaf { page_size },
                        },
                        translation: Some(Translation {
                            pa,
                            pfn,
                            page_size,
                            node,
                        }),
                    };
                }
                None => {
                    return WalkProbe {
                        va,
                        last_step: WalkStep {
                            level,
                            table: current,
                            index,
                            outcome: WalkLevel::NotPresent,
                        },
                        translation: None,
                    };
                }
            }
        }
        unreachable!("L1 entries are always leaves or absent");
    }

    /// Walks the page table for `va`, reporting every entry access.
    ///
    /// The step trace allocates; simulation hot paths use the trace-free
    /// [`PageTable::probe`] instead and `walk` serves tests, inspection and
    /// the MMU-cache studies that need per-entry access records.
    #[must_use]
    pub fn walk(&self, va: VirtAddr) -> WalkPath {
        let mut steps = Vec::with_capacity(4);
        let mut current = Self::ROOT;
        for level in WalkIndexLevel::WALK_ORDER {
            let index = va.level_index(level);
            match self.nodes[current.0 as usize].get(index) {
                Some(Entry::Table(next)) => {
                    steps.push(WalkStep {
                        level,
                        table: current,
                        index,
                        outcome: WalkLevel::NextTable { next },
                    });
                    current = next;
                }
                Some(Entry::Leaf {
                    pfn,
                    node,
                    page_size,
                }) => {
                    steps.push(WalkStep {
                        level,
                        table: current,
                        index,
                        outcome: WalkLevel::Leaf { page_size },
                    });
                    let offset = va.page_offset(page_size);
                    let pa = PhysAddr::new(pfn.base_addr().raw() + offset);
                    return WalkPath {
                        va,
                        steps,
                        translation: Some(Translation {
                            pa,
                            pfn,
                            page_size,
                            node,
                        }),
                    };
                }
                None => {
                    steps.push(WalkStep {
                        level,
                        table: current,
                        index,
                        outcome: WalkLevel::NotPresent,
                    });
                    return WalkPath {
                        va,
                        steps,
                        translation: None,
                    };
                }
            }
        }
        WalkPath {
            va,
            steps,
            translation: None,
        }
    }

    /// Walks the page table starting below the L2 level, as a PTW whose
    /// TPreg/translation-path cache already holds the L4/L3/L2 entries would.
    ///
    /// Returns the walk steps actually performed (at most the L1 access for a
    /// 4 KB mapping; an empty step list for a 2 MB mapping whose leaf lives at
    /// L2 and is therefore covered by the cached path). Implemented on the
    /// probe path: only the final entry access can sit at L1, so the step
    /// trace is reconstructed from it without a second traversal.
    #[must_use]
    pub fn walk_from_cached_path(&self, va: VirtAddr) -> WalkPath {
        let probe = self.probe(va);
        let steps = if probe.last_step.level == WalkIndexLevel::L1 {
            vec![probe.last_step]
        } else {
            Vec::new()
        };
        WalkPath {
            va,
            steps,
            translation: probe.translation,
        }
    }

    /// Translates `va` without recording walk steps.
    ///
    /// # Errors
    ///
    /// Returns [`VmemError::NotMapped`] if no mapping covers `va`.
    pub fn translate(&self, va: VirtAddr) -> Result<Translation, VmemError> {
        self.probe(va)
            .translation
            .ok_or(VmemError::NotMapped { va })
    }

    /// True if `va` is covered by a mapping.
    #[must_use]
    pub fn is_mapped(&self, va: VirtAddr) -> bool {
        self.probe(va).is_hit()
    }

    /// True if the 4 KB virtual page is covered by a mapping.
    #[must_use]
    pub fn is_vpn_mapped(&self, vpn: VirtPageNum) -> bool {
        self.is_mapped(vpn.base_addr())
    }

    /// Structural statistics of the table.
    #[must_use]
    pub fn stats(&self) -> PageTableStats {
        self.stats
    }
}

/// Number of 4 KB pages needed to cover `bytes`.
#[must_use]
pub fn pages_4k(bytes: u64) -> u64 {
    bytes.div_ceil(1 << PAGE_SHIFT_4K)
}

/// Number of 2 MB pages needed to cover `bytes`.
#[must_use]
pub fn pages_2m(bytes: u64) -> u64 {
    bytes.div_ceil(1 << PAGE_SHIFT_2M)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_4k(pt: &mut PageTable, va: u64, pfn: u64) {
        pt.map(
            VirtAddr::new(va),
            PageSize::Size4K,
            PhysFrameNum::new(pfn),
            MemNode::Npu(0),
        )
        .unwrap();
    }

    #[test]
    fn map_and_translate_4k() {
        let mut pt = PageTable::new();
        map_4k(&mut pt, 0x40_0000, 0x99);
        let t = pt.translate(VirtAddr::new(0x40_0123)).unwrap();
        assert_eq!(t.pa.raw(), (0x99 << 12) | 0x123);
        assert_eq!(t.page_size, PageSize::Size4K);
        assert_eq!(t.node, MemNode::Npu(0));
    }

    #[test]
    fn walk_of_4k_mapping_takes_four_accesses() {
        let mut pt = PageTable::new();
        map_4k(&mut pt, 0x40_0000, 0x99);
        let path = pt.walk(VirtAddr::new(0x40_0000));
        assert!(path.is_hit());
        assert_eq!(path.memory_accesses(), 4);
        assert_eq!(path.steps[0].level, WalkIndexLevel::L4);
        assert_eq!(path.steps[3].level, WalkIndexLevel::L1);
        assert!(matches!(
            path.steps[3].outcome,
            WalkLevel::Leaf {
                page_size: PageSize::Size4K
            }
        ));
    }

    #[test]
    fn walk_of_2m_mapping_takes_three_accesses() {
        let mut pt = PageTable::new();
        pt.map(
            VirtAddr::new(0x20_0000),
            PageSize::Size2M,
            PhysFrameNum::new(0x1000),
            MemNode::Host,
        )
        .unwrap();
        let path = pt.walk(VirtAddr::new(0x20_0000 + 0x1234));
        assert!(path.is_hit());
        assert_eq!(path.memory_accesses(), 3);
        let t = path.translation.unwrap();
        assert_eq!(t.pa.raw(), (0x1000u64 << 12) + 0x1234);
        assert_eq!(t.page_size, PageSize::Size2M);
    }

    #[test]
    fn walk_miss_reports_partial_path() {
        let pt = PageTable::new();
        let path = pt.walk(VirtAddr::new(0x1234_5678));
        assert!(!path.is_hit());
        assert_eq!(path.memory_accesses(), 1);
        assert!(matches!(path.steps[0].outcome, WalkLevel::NotPresent));
    }

    #[test]
    fn misaligned_2m_mapping_rejected() {
        let mut pt = PageTable::new();
        let err = pt
            .map(
                VirtAddr::new(0x1000),
                PageSize::Size2M,
                PhysFrameNum::new(1),
                MemNode::Host,
            )
            .unwrap_err();
        assert!(matches!(err, VmemError::MisalignedMapping { .. }));
    }

    #[test]
    fn double_mapping_rejected() {
        let mut pt = PageTable::new();
        map_4k(&mut pt, 0x1000, 1);
        let err = pt
            .map(
                VirtAddr::new(0x1000),
                PageSize::Size4K,
                PhysFrameNum::new(2),
                MemNode::Host,
            )
            .unwrap_err();
        assert!(matches!(err, VmemError::AlreadyMapped { .. }));
        // Mapping a 4 KB page under an existing 2 MB page is also rejected.
        pt.map(
            VirtAddr::new(0x20_0000),
            PageSize::Size2M,
            PhysFrameNum::new(3),
            MemNode::Host,
        )
        .unwrap();
        let err = pt
            .map(
                VirtAddr::new(0x20_1000),
                PageSize::Size4K,
                PhysFrameNum::new(4),
                MemNode::Host,
            )
            .unwrap_err();
        assert!(matches!(err, VmemError::AlreadyMapped { .. }));
    }

    #[test]
    fn unmap_removes_mapping_and_updates_stats() {
        let mut pt = PageTable::new();
        map_4k(&mut pt, 0x5000, 42);
        assert_eq!(pt.stats().leaf_4k, 1);
        let old = pt.unmap(VirtAddr::new(0x5000)).unwrap();
        assert_eq!(old.pfn.raw(), 42);
        assert_eq!(pt.stats().leaf_4k, 0);
        assert!(!pt.is_mapped(VirtAddr::new(0x5000)));
        assert!(matches!(
            pt.unmap(VirtAddr::new(0x5000)),
            Err(VmemError::NotMapped { .. })
        ));
    }

    #[test]
    fn remap_changes_frame_and_node() {
        let mut pt = PageTable::new();
        map_4k(&mut pt, 0x5000, 42);
        let old = pt
            .remap(
                VirtAddr::new(0x5000),
                PhysFrameNum::new(100),
                MemNode::Npu(3),
            )
            .unwrap();
        assert_eq!(old.pfn.raw(), 42);
        let t = pt.translate(VirtAddr::new(0x5abc)).unwrap();
        assert_eq!(t.pfn.raw(), 100);
        assert_eq!(t.node, MemNode::Npu(3));
        assert_eq!(t.pa.raw(), (100u64 << 12) | 0xabc);
    }

    #[test]
    fn adjacent_pages_share_upper_tables() {
        let mut pt = PageTable::new();
        map_4k(&mut pt, 0x10_0000, 1);
        let tables_after_first = pt.stats().tables;
        map_4k(&mut pt, 0x10_1000, 2);
        // The second page is in the same L1 table: no new interior nodes.
        assert_eq!(pt.stats().tables, tables_after_first);
        let a = pt.walk(VirtAddr::new(0x10_0000));
        let b = pt.walk(VirtAddr::new(0x10_1000));
        for i in 0..3 {
            assert_eq!(a.steps[i].table, b.steps[i].table);
        }
    }

    #[test]
    fn walk_from_cached_path_skips_upper_levels() {
        let mut pt = PageTable::new();
        map_4k(&mut pt, 0x40_0000, 7);
        let partial = pt.walk_from_cached_path(VirtAddr::new(0x40_0000));
        assert!(partial.is_hit());
        assert_eq!(partial.memory_accesses(), 1);
        pt.map(
            VirtAddr::new(0x8000_0000),
            PageSize::Size2M,
            PhysFrameNum::new(0x2000),
            MemNode::Host,
        )
        .unwrap();
        let partial2m = pt.walk_from_cached_path(VirtAddr::new(0x8000_0000));
        assert!(partial2m.is_hit());
        assert_eq!(partial2m.memory_accesses(), 0);
    }

    #[test]
    fn stats_mapped_bytes() {
        let mut pt = PageTable::new();
        map_4k(&mut pt, 0x1000, 1);
        pt.map(
            VirtAddr::new(0x20_0000),
            PageSize::Size2M,
            PhysFrameNum::new(512),
            MemNode::Host,
        )
        .unwrap();
        assert_eq!(pt.stats().mapped_bytes(), 4096 + 2 * 1024 * 1024);
    }

    #[test]
    fn page_count_helpers() {
        assert_eq!(pages_4k(1), 1);
        assert_eq!(pages_4k(4096), 1);
        assert_eq!(pages_4k(4097), 2);
        assert_eq!(pages_2m(2 * 1024 * 1024 + 1), 2);
    }

    #[test]
    fn probe_agrees_with_walk_on_hits_misses_and_both_page_sizes() {
        let mut pt = PageTable::new();
        map_4k(&mut pt, 0x40_0000, 0x99);
        pt.map(
            VirtAddr::new(0x8000_0000),
            PageSize::Size2M,
            PhysFrameNum::new(0x2000),
            MemNode::Host,
        )
        .unwrap();
        for raw in [
            0x40_0000u64,     // 4 KB hit
            0x40_0123,        // 4 KB hit, interior offset
            0x8000_0000,      // 2 MB hit
            0x8012_3456,      // 2 MB hit, interior offset
            0x40_1000,        // miss at L1 (sibling page)
            0x1234_5678,      // miss at an upper level
            0x0007_ffff_f000, // miss far away
        ] {
            let va = VirtAddr::new(raw);
            let probe = pt.probe(va);
            let walk = pt.walk(va);
            assert_eq!(probe.is_hit(), walk.is_hit(), "hit mismatch at {va}");
            assert_eq!(
                probe.memory_accesses(),
                walk.memory_accesses(),
                "access-count mismatch at {va}"
            );
            assert_eq!(probe.translation, walk.translation, "leaf mismatch at {va}");
            assert_eq!(
                Some(&probe.last_step),
                walk.steps.last(),
                "final step mismatch at {va}"
            );
        }
    }

    #[test]
    fn probe_cached_path_accesses_match_walk_from_cached_path() {
        let mut pt = PageTable::new();
        map_4k(&mut pt, 0x40_0000, 7);
        pt.map(
            VirtAddr::new(0x8000_0000),
            PageSize::Size2M,
            PhysFrameNum::new(0x2000),
            MemNode::Host,
        )
        .unwrap();
        for raw in [0x40_0000u64, 0x8000_0000, 0x40_1000, 0x1234_5678] {
            let va = VirtAddr::new(raw);
            let probe = pt.probe(va);
            let partial = pt.walk_from_cached_path(va);
            assert_eq!(probe.cached_path_accesses(), partial.memory_accesses());
            assert_eq!(probe.translation, partial.translation);
        }
    }

    #[test]
    fn revision_changes_on_map_and_unmap_but_not_remap() {
        let mut pt = PageTable::new();
        let fresh = pt.revision();
        map_4k(&mut pt, 0x1000, 1);
        let after_map = pt.revision();
        assert_ne!(after_map, fresh);
        // Failed maps leave the revision alone.
        assert!(pt
            .map(
                VirtAddr::new(0x1000),
                PageSize::Size4K,
                PhysFrameNum::new(2),
                MemNode::Host
            )
            .is_err());
        assert_eq!(pt.revision(), after_map);
        // Migration does not change mapped-ness.
        pt.remap(VirtAddr::new(0x1000), PhysFrameNum::new(9), MemNode::Npu(1))
            .unwrap();
        assert_eq!(pt.revision(), after_map);
        pt.unmap(VirtAddr::new(0x1000)).unwrap();
        let after_unmap = pt.revision();
        assert_ne!(after_unmap, after_map);
        assert!(pt.unmap(VirtAddr::new(0x1000)).is_err());
        assert_eq!(pt.revision(), after_unmap);
    }

    #[test]
    fn revisions_are_unique_across_tables_and_track_clone_divergence() {
        // Two tables that saw the same number of mutations must not share a
        // stamp — equal revisions promise identical mapped-ness everywhere.
        let mut a = PageTable::new();
        let mut b = PageTable::new();
        assert_ne!(a.revision(), b.revision());
        map_4k(&mut a, 0x1000, 1);
        map_4k(&mut b, 0x2000, 2);
        assert_ne!(a.revision(), b.revision());
        // A clone shares the stamp exactly while the states coincide...
        let mut c = a.clone();
        assert_eq!(c.revision(), a.revision());
        // ...and diverges as soon as either mutates.
        map_4k(&mut c, 0x3000, 3);
        assert_ne!(c.revision(), a.revision());
    }

    #[test]
    fn table_ids_have_distinct_synthetic_addresses() {
        let a = TableId(0).phys_addr();
        let b = TableId(1).phys_addr();
        assert_ne!(a, b);
        assert_eq!(b.raw() - a.raw(), 4096);
    }
}
