//! Property-based tests for the virtual-memory substrate.

use proptest::prelude::*;

use neummu_vmem::prelude::*;

/// Strategy producing canonical virtual addresses.
fn canonical_va() -> impl Strategy<Value = u64> {
    0u64..(1u64 << 48)
}

proptest! {
    /// Splitting an address into page base + offset and recombining is lossless.
    #[test]
    fn page_decomposition_roundtrip(raw in canonical_va()) {
        let va = VirtAddr::new(raw);
        for size in [PageSize::Size4K, PageSize::Size2M] {
            let base = va.page_base(size);
            let offset = va.page_offset(size);
            prop_assert_eq!(base.raw() + offset, raw);
            prop_assert!(offset < size.bytes());
            prop_assert!(base.is_aligned(size));
        }
    }

    /// The four 9-bit level indices plus the 12-bit offset reconstruct the address.
    #[test]
    fn level_indices_reconstruct_address(raw in canonical_va()) {
        let va = VirtAddr::new(raw);
        let l4 = u64::from(va.level_index(WalkIndexLevel::L4));
        let l3 = u64::from(va.level_index(WalkIndexLevel::L3));
        let l2 = u64::from(va.level_index(WalkIndexLevel::L2));
        let l1 = u64::from(va.level_index(WalkIndexLevel::L1));
        let offset = va.page_offset(PageSize::Size4K);
        let rebuilt = (l4 << 39) | (l3 << 30) | (l2 << 21) | (l1 << 12) | offset;
        prop_assert_eq!(rebuilt, raw);
    }

    /// Addresses sharing a 2 MB page always share their PathTag.
    #[test]
    fn path_tag_constant_within_2mb_page(base in canonical_va(), off_a in 0u64..(2<<20), off_b in 0u64..(2<<20)) {
        let page = VirtAddr::new(base).page_base(PageSize::Size2M);
        // Stay within the canonical range.
        prop_assume!(page.raw() + (2 << 20) <= (1u64 << 48));
        let a = page.add(off_a);
        let b = page.add(off_b);
        prop_assert_eq!(PathTag::of(a), PathTag::of(b));
    }

    /// Mapping then translating a set of distinct pages returns the frames
    /// they were mapped to, and every walk visits exactly 4 levels.
    #[test]
    fn page_table_map_translate_roundtrip(pages in prop::collection::hash_set(0u64..(1u64 << 24), 1..50)) {
        let mut pt = PageTable::new();
        let pages: Vec<u64> = pages.into_iter().collect();
        for (i, vpn) in pages.iter().enumerate() {
            pt.map(
                VirtPageNum::new(*vpn).base_addr(),
                PageSize::Size4K,
                PhysFrameNum::new(1_000_000 + i as u64),
                MemNode::Npu(0),
            )
            .unwrap();
        }
        for (i, vpn) in pages.iter().enumerate() {
            let va = VirtPageNum::new(*vpn).base_addr().add(123);
            let walk = pt.walk(va);
            prop_assert!(walk.is_hit());
            prop_assert_eq!(walk.memory_accesses(), 4);
            let t = walk.translation.unwrap();
            prop_assert_eq!(t.pfn.raw(), 1_000_000 + i as u64);
        }
        prop_assert_eq!(pt.stats().leaf_4k, pages.len() as u64);
    }

    /// The allocation-free `probe` agrees with the trace-recording `walk` —
    /// hit flag, levels touched, translation and final entry access — on
    /// randomly generated mixes of 4 KB and 2 MB mappings, probed both at
    /// mapped and (likely) unmapped addresses. `walk_from_cached_path`, which
    /// is implemented on the probe, must agree with the probe's L1-only
    /// access count.
    #[test]
    fn probe_agrees_with_walk_on_random_mapping_mixes(
        small_pages in prop::collection::hash_set(0u64..(1u64 << 22), 1..40),
        huge_pages in prop::collection::hash_set(0u64..(1u64 << 13), 1..8),
        probes in prop::collection::vec((0u64..(1u64 << 34), 0u64..4096u64), 1..40),
    ) {
        let mut pt = PageTable::new();
        // 2 MB mappings first (each covers 512 small-page slots)...
        for (i, hp) in huge_pages.iter().enumerate() {
            let va = VirtAddr::new(hp << 21);
            let _ = pt.map(va, PageSize::Size2M, PhysFrameNum::new(2_000_000 + (i as u64) * 512), MemNode::Host);
        }
        // ...then 4 KB mappings wherever no large page already covers them.
        for (i, vpn) in small_pages.iter().enumerate() {
            let va = VirtPageNum::new(*vpn).base_addr();
            let _ = pt.map(va, PageSize::Size4K, PhysFrameNum::new(1_000_000 + i as u64), MemNode::Npu(0));
        }
        // Probe every mapped page plus arbitrary addresses (mostly misses).
        let mapped_vas = small_pages.iter().map(|vpn| (vpn << 12) + 777)
            .chain(huge_pages.iter().map(|hp| (hp << 21) + 123_456));
        let arbitrary_vas = probes.iter().map(|(base, off)| base + off);
        for raw in mapped_vas.chain(arbitrary_vas) {
            let va = VirtAddr::new(raw);
            let probe = pt.probe(va);
            let walk = pt.walk(va);
            prop_assert_eq!(probe.is_hit(), walk.is_hit());
            prop_assert_eq!(probe.memory_accesses(), walk.memory_accesses());
            prop_assert_eq!(probe.translation, walk.translation);
            prop_assert_eq!(Some(&probe.last_step), walk.steps.last());
            let partial = pt.walk_from_cached_path(va);
            prop_assert_eq!(probe.cached_path_accesses(), partial.memory_accesses());
            prop_assert_eq!(probe.translation, partial.translation);
        }
    }

    /// Frame allocation never hands out the same frame twice while it is live,
    /// and freed frames can be reused.
    #[test]
    fn frame_allocator_uniqueness(count in 1usize..200) {
        let mut mem = PhysicalMemory::new(&[NodeSpec::new(MemNode::Npu(0), 1 << 20)]);
        let budget = (1usize << 20) / 4096;
        let n = count.min(budget);
        let mut seen = std::collections::HashSet::new();
        let mut frames = Vec::new();
        for _ in 0..n {
            let f = mem.alloc_frame(MemNode::Npu(0)).unwrap();
            prop_assert!(seen.insert(f.raw()));
            frames.push(f);
        }
        for f in &frames {
            mem.free_frame(*f).unwrap();
        }
        prop_assert_eq!(mem.used_bytes(MemNode::Npu(0)).unwrap(), 0);
        // All freed frames are reusable.
        for _ in 0..n {
            mem.alloc_frame(MemNode::Npu(0)).unwrap();
        }
    }

    /// `pages_in_range` covers exactly the bytes in the range.
    #[test]
    fn pages_in_range_covers_range(start in 0u64..(1u64 << 40), len in 1u64..(1u64 << 20)) {
        let pages = AddressSpace::pages_in_range(VirtAddr::new(start), len);
        let expected = (start + len - 1) / 4096 - start / 4096 + 1;
        prop_assert_eq!(pages.len() as u64, expected);
        // Pages are consecutive and sorted.
        for w in pages.windows(2) {
            prop_assert_eq!(w[1].raw(), w[0].raw() + 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Demand paging maps exactly the touched pages of a lazy segment, and
    /// repeated touches never fault twice.
    #[test]
    fn lazy_segment_faults_once_per_page(offsets in prop::collection::vec(0u64..(1u64 << 20), 1..64)) {
        let mut mem = PhysicalMemory::with_npus(1, 1 << 30);
        let mut space = AddressSpace::new("npu0");
        let seg = space
            .alloc_segment(
                "emb",
                1 << 20,
                SegmentOptions::new(MemNode::Host, PageSize::Size4K).lazy(),
                &mut mem,
            )
            .unwrap();
        let mut distinct_pages = std::collections::HashSet::new();
        let mut faults = 0u64;
        for off in &offsets {
            let va = seg.addr_at(*off);
            let outcome = space.ensure_mapped(va, &mut mem).unwrap();
            if outcome.faulted() {
                faults += 1;
            }
            distinct_pages.insert(va.vpn());
        }
        prop_assert_eq!(faults, distinct_pages.len() as u64);
        prop_assert_eq!(space.stats().faults, faults);
        prop_assert_eq!(
            mem.used_bytes(MemNode::Host).unwrap(),
            distinct_pages.len() as u64 * 4096
        );
    }

    /// Migration preserves the page offset of every translated address and
    /// moves occupancy from the source to the destination node.
    #[test]
    fn migration_preserves_offsets(page_index in 0u64..256, probe_offset in 0u64..4096u64) {
        let mut mem = PhysicalMemory::with_npus(2, 1 << 30);
        let mut space = AddressSpace::new("sys");
        let seg = space
            .alloc_segment(
                "table",
                256 * 4096,
                SegmentOptions::new(MemNode::Npu(1), PageSize::Size4K),
                &mut mem,
            )
            .unwrap();
        let va = seg.addr_at(page_index * 4096 + probe_offset);
        let before = space.translate(va).unwrap();
        space.migrate_page(va, MemNode::Npu(0), &mut mem).unwrap();
        let after = space.translate(va).unwrap();
        prop_assert_eq!(before.pa.frame_offset(), after.pa.frame_offset());
        prop_assert_eq!(after.node, MemNode::Npu(0));
    }
}
