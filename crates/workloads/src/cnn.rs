//! CNN workload definitions: AlexNet (CNN-1), GoogLeNet (CNN-2) and ResNet-50
//! (CNN-3).
//!
//! The layer tables below use the published architecture dimensions of the
//! respective networks. The paper picked these three CNNs because together
//! they cover a wide range of filter and activation sizes (Section II-C).

use neummu_npu::layer::Layer;

/// AlexNet (CNN-1): five convolution layers followed by three fully-connected
/// layers.
#[must_use]
pub fn alexnet(batch: u64) -> Vec<Layer> {
    vec![
        Layer::conv2d("conv1", batch, 3, 224, 224, 64, 11, 11, 4, 2),
        Layer::conv2d("conv2", batch, 64, 27, 27, 192, 5, 5, 1, 2),
        Layer::conv2d("conv3", batch, 192, 13, 13, 384, 3, 3, 1, 1),
        Layer::conv2d("conv4", batch, 384, 13, 13, 256, 3, 3, 1, 1),
        Layer::conv2d("conv5", batch, 256, 13, 13, 256, 3, 3, 1, 1),
        Layer::fully_connected("fc6", batch, 256 * 6 * 6, 4096),
        Layer::fully_connected("fc7", batch, 4096, 4096),
        Layer::fully_connected("fc8", batch, 4096, 1000),
    ]
}

/// One GoogLeNet inception module, lowered into its constituent convolutions.
///
/// `ch` is the number of input channels of the module; the `b*` parameters are
/// the published branch widths (1×1, 3×3-reduce, 3×3, 5×5-reduce, 5×5, pool
/// projection).
#[allow(clippy::too_many_arguments)]
fn inception(
    name: &str,
    batch: u64,
    ch: u64,
    hw: u64,
    b1: u64,
    b3r: u64,
    b3: u64,
    b5r: u64,
    b5: u64,
    pool_proj: u64,
) -> Vec<Layer> {
    vec![
        Layer::conv2d(format!("{name}_1x1"), batch, ch, hw, hw, b1, 1, 1, 1, 0),
        Layer::conv2d(format!("{name}_3x3r"), batch, ch, hw, hw, b3r, 1, 1, 1, 0),
        Layer::conv2d(format!("{name}_3x3"), batch, b3r, hw, hw, b3, 3, 3, 1, 1),
        Layer::conv2d(format!("{name}_5x5r"), batch, ch, hw, hw, b5r, 1, 1, 1, 0),
        Layer::conv2d(format!("{name}_5x5"), batch, b5r, hw, hw, b5, 5, 5, 1, 2),
        Layer::conv2d(
            format!("{name}_pool"),
            batch,
            ch,
            hw,
            hw,
            pool_proj,
            1,
            1,
            1,
            0,
        ),
    ]
}

/// GoogLeNet (CNN-2): the stem convolutions, all nine inception modules and
/// the classifier.
#[must_use]
pub fn googlenet(batch: u64) -> Vec<Layer> {
    let mut layers = vec![
        Layer::conv2d("conv1", batch, 3, 224, 224, 64, 7, 7, 2, 3),
        Layer::conv2d("conv2_reduce", batch, 64, 56, 56, 64, 1, 1, 1, 0),
        Layer::conv2d("conv2", batch, 64, 56, 56, 192, 3, 3, 1, 1),
    ];
    layers.extend(inception("inc3a", batch, 192, 28, 64, 96, 128, 16, 32, 32));
    layers.extend(inception(
        "inc3b", batch, 256, 28, 128, 128, 192, 32, 96, 64,
    ));
    layers.extend(inception("inc4a", batch, 480, 14, 192, 96, 208, 16, 48, 64));
    layers.extend(inception(
        "inc4b", batch, 512, 14, 160, 112, 224, 24, 64, 64,
    ));
    layers.extend(inception(
        "inc4c", batch, 512, 14, 128, 128, 256, 24, 64, 64,
    ));
    layers.extend(inception(
        "inc4d", batch, 512, 14, 112, 144, 288, 32, 64, 64,
    ));
    layers.extend(inception(
        "inc4e", batch, 528, 14, 256, 160, 320, 32, 128, 128,
    ));
    layers.extend(inception(
        "inc5a", batch, 832, 7, 256, 160, 320, 32, 128, 128,
    ));
    layers.extend(inception(
        "inc5b", batch, 832, 7, 384, 192, 384, 48, 128, 128,
    ));
    layers.push(Layer::fully_connected("fc", batch, 1024, 1000));
    layers
}

/// One ResNet bottleneck block (1×1 reduce, 3×3, 1×1 expand), plus the
/// projection shortcut when the block changes resolution or width.
#[allow(clippy::too_many_arguments)]
fn bottleneck(
    name: &str,
    batch: u64,
    in_ch: u64,
    hw: u64,
    mid_ch: u64,
    out_ch: u64,
    stride: u64,
    project: bool,
) -> Vec<Layer> {
    let out_hw = hw / stride;
    let mut layers = vec![
        Layer::conv2d(
            format!("{name}_a"),
            batch,
            in_ch,
            hw,
            hw,
            mid_ch,
            1,
            1,
            stride,
            0,
        ),
        Layer::conv2d(
            format!("{name}_b"),
            batch,
            mid_ch,
            out_hw,
            out_hw,
            mid_ch,
            3,
            3,
            1,
            1,
        ),
        Layer::conv2d(
            format!("{name}_c"),
            batch,
            mid_ch,
            out_hw,
            out_hw,
            out_ch,
            1,
            1,
            1,
            0,
        ),
    ];
    if project {
        layers.push(Layer::conv2d(
            format!("{name}_proj"),
            batch,
            in_ch,
            hw,
            hw,
            out_ch,
            1,
            1,
            stride,
            0,
        ));
    }
    layers
}

/// ResNet-50 (CNN-3): the stem convolution, the four bottleneck stages
/// (3/4/6/3 blocks) and the classifier.
#[must_use]
pub fn resnet50(batch: u64) -> Vec<Layer> {
    let mut layers = vec![Layer::conv2d("conv1", batch, 3, 224, 224, 64, 7, 7, 2, 3)];
    let stages: [(u64, u64, u64, u64, u64); 4] = [
        // (blocks, input channels, spatial size, mid channels, output channels)
        (3, 64, 56, 64, 256),
        (4, 256, 56, 128, 512),
        (6, 512, 28, 256, 1024),
        (3, 1024, 14, 512, 2048),
    ];
    for (stage_idx, (blocks, in_ch, hw, mid, out)) in stages.into_iter().enumerate() {
        let stage_stride = if stage_idx > 0 { 2 } else { 1 };
        for block in 0..blocks {
            let name = format!("res{}_{block}", stage_idx + 2);
            let first = block == 0;
            let stride = if first { stage_stride } else { 1 };
            let block_in = if first { in_ch } else { out };
            let block_hw = if first { hw } else { hw / stage_stride };
            layers.extend(bottleneck(
                &name, batch, block_in, block_hw, mid, out, stride, first,
            ));
        }
    }
    layers.push(Layer::fully_connected("fc", batch, 2048, 1000));
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_layer_count_and_validity() {
        let layers = alexnet(4);
        assert_eq!(layers.len(), 8);
        for layer in &layers {
            assert!(layer.validate().is_ok(), "{} invalid", layer.name());
            assert_eq!(layer.batch(), 4);
        }
        // fc6 holds the largest weight matrix of AlexNet.
        let fc6 = layers.iter().find(|l| l.name() == "fc6").unwrap();
        assert_eq!(fc6.w_shape().bytes(), 256 * 6 * 6 * 4096 * 2);
    }

    #[test]
    fn googlenet_has_nine_inception_modules() {
        let layers = googlenet(1);
        // 3 stem convs + 9 modules x 6 convs + 1 fc.
        assert_eq!(layers.len(), 3 + 9 * 6 + 1);
        for layer in &layers {
            assert!(layer.validate().is_ok(), "{} invalid", layer.name());
        }
    }

    #[test]
    fn resnet50_has_53_convolutions_plus_fc() {
        let layers = resnet50(1);
        // Stem + 16 bottlenecks x 3 convs + 4 projection shortcuts + fc = 1+48+4+1.
        assert_eq!(layers.len(), 54);
        for layer in &layers {
            assert!(layer.validate().is_ok(), "{} invalid", layer.name());
        }
    }

    #[test]
    fn batch_size_scales_activation_footprints_only() {
        let b1 = alexnet(1);
        let b8 = alexnet(8);
        for (a, b) in b1.iter().zip(b8.iter()) {
            assert_eq!(a.w_shape(), b.w_shape());
            assert_eq!(b.ia_shape().bytes(), 8 * a.ia_shape().bytes());
        }
    }

    #[test]
    fn networks_cover_a_wide_range_of_filter_sizes() {
        // The paper chose these CNNs to span small and large filters.
        let all: Vec<_> = alexnet(1)
            .into_iter()
            .chain(googlenet(1))
            .chain(resnet50(1))
            .collect();
        let ks: Vec<u64> = all
            .iter()
            .filter_map(|l| match l.op() {
                neummu_npu::layer::LayerOp::Conv2d { kernel_h, .. } => Some(kernel_h),
                _ => None,
            })
            .collect();
        assert!(ks.contains(&1));
        assert!(ks.contains(&3));
        assert!(ks.contains(&5));
        assert!(ks.contains(&7));
        assert!(ks.contains(&11));
    }
}
