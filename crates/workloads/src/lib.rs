//! Workload definitions for the NeuMMU reproduction.
//!
//! The paper evaluates two families of workloads (Section II-C):
//!
//! * **Dense DNNs** — three CNNs (AlexNet, GoogLeNet, ResNet-50, denoted
//!   CNN-1/2/3) and three DeepBench-style RNNs (one GEMV-based vanilla RNN and
//!   two LSTMs, denoted RNN-1/2/3), each at batch sizes 1, 4 and 8.
//! * **Sparse, embedding-dominated recommenders** — the neural collaborative
//!   filtering model (NCF) and Facebook's DLRM, used for the Section V NUMA /
//!   demand-paging case study at batch sizes 1, 8 and 64.
//!
//! Layer tables are constructed from the published architecture dimensions;
//! only shapes matter for address-translation behaviour, never weight values.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cnn;
pub mod embedding;
pub mod rnn;
pub mod suite;

pub use embedding::{
    EmbeddingModel, EmbeddingTableSpec, IndexDistribution, LookupStream, LookupTrace,
};
pub use suite::{
    dense_suite, sparse_suite, DenseWorkload, WorkloadId, DENSE_BATCH_SIZES, SPARSE_BATCH_SIZES,
};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::cnn;
    pub use crate::embedding::{
        EmbeddingModel, EmbeddingTableSpec, IndexDistribution, LookupStream, LookupTrace,
    };
    pub use crate::rnn;
    pub use crate::suite::{
        dense_suite, sparse_suite, DenseWorkload, WorkloadId, DENSE_BATCH_SIZES, SPARSE_BATCH_SIZES,
    };
}
