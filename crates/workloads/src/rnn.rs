//! RNN workload definitions (DeepBench-style kernels).
//!
//! The paper uses three recurrent workloads from DeepBench (Section II-C):
//! one plain GEMV-based RNN (RNN-1) and two LSTM-based networks (RNN-2 and
//! RNN-3). DeepBench specifies these kernels by their hidden size, input size
//! and number of time steps; the weight matrices are tens of MBs and are
//! re-streamed from memory every step when they exceed the scratchpad, which
//! is what makes small-batch RNN inference memory-bandwidth-bound.

use neummu_npu::layer::Layer;

/// RNN-1: a vanilla (GEMV) recurrent network, hidden size 2560, 50 steps.
#[must_use]
pub fn rnn1(batch: u64) -> Vec<Layer> {
    vec![Layer::rnn_cell("rnn_h2560", batch, 2560, 2560, 50)]
}

/// RNN-2: an LSTM network, hidden size 1760, 50 steps.
#[must_use]
pub fn rnn2(batch: u64) -> Vec<Layer> {
    vec![Layer::lstm_cell("lstm_h1760", batch, 1760, 1760, 50)]
}

/// RNN-3: a larger LSTM network, hidden size 2048, 25 steps.
#[must_use]
pub fn rnn3(batch: u64) -> Vec<Layer> {
    vec![Layer::lstm_cell("lstm_h2048", batch, 2048, 2048, 25)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rnn_layers_are_valid() {
        for layers in [rnn1(1), rnn2(4), rnn3(8)] {
            for layer in layers {
                assert!(layer.validate().is_ok());
            }
        }
    }

    #[test]
    fn lstm_weight_matrices_exceed_the_scratchpad() {
        // The defining property of the RNN suite: weights far exceed the 10 MB
        // weight scratchpad, so every time step re-streams them from memory.
        let lstm = &rnn2(1)[0];
        assert!(lstm.w_shape().bytes() > 10 * 1024 * 1024);
        let rnn = &rnn1(1)[0];
        assert!(rnn.w_shape().bytes() > 10 * 1024 * 1024);
    }

    #[test]
    fn repeats_match_time_steps() {
        assert_eq!(rnn1(1)[0].repeats(), 50);
        assert_eq!(rnn2(1)[0].repeats(), 50);
        assert_eq!(rnn3(1)[0].repeats(), 25);
    }

    #[test]
    fn batch_does_not_change_weight_footprint() {
        assert_eq!(rnn3(1)[0].w_shape(), rnn3(8)[0].w_shape());
    }
}
