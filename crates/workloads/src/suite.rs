//! The benchmark suites used throughout the evaluation.
//!
//! * The **dense suite** is CNN-1/2/3 and RNN-1/2/3 at batch sizes 1, 4 and 8
//!   (denoted `b01`/`b04`/`b08` in the paper's figures).
//! * The **sparse suite** is NCF and DLRM at batch sizes 1, 8 and 64.
//! * Each dense workload also exposes a "common layer" used for the
//!   large-batch sensitivity study of Section VI-C, where simulating the full
//!   network would be intractable.

use serde::{Deserialize, Serialize};

use neummu_npu::layer::Layer;

use crate::cnn;
use crate::embedding::EmbeddingModel;
use crate::rnn;

/// Batch sizes of the dense-DNN evaluation (`b01`, `b04`, `b08`).
pub const DENSE_BATCH_SIZES: [u64; 3] = [1, 4, 8];

/// Batch sizes of the embedding-layer case study (`b01`, `b08`, `b64`).
pub const SPARSE_BATCH_SIZES: [u64; 3] = [1, 8, 64];

/// Identifies one workload of the dense suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkloadId {
    /// AlexNet.
    Cnn1,
    /// GoogLeNet.
    Cnn2,
    /// ResNet-50.
    Cnn3,
    /// DeepBench vanilla (GEMV) RNN.
    Rnn1,
    /// DeepBench LSTM, hidden size 1760.
    Rnn2,
    /// DeepBench LSTM, hidden size 2048.
    Rnn3,
}

impl WorkloadId {
    /// All dense workloads in the paper's figure order.
    pub const ALL: [WorkloadId; 6] = [
        WorkloadId::Cnn1,
        WorkloadId::Cnn2,
        WorkloadId::Cnn3,
        WorkloadId::Rnn1,
        WorkloadId::Rnn2,
        WorkloadId::Rnn3,
    ];

    /// The label used in the paper's figures (e.g. `CNN-1`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WorkloadId::Cnn1 => "CNN-1",
            WorkloadId::Cnn2 => "CNN-2",
            WorkloadId::Cnn3 => "CNN-3",
            WorkloadId::Rnn1 => "RNN-1",
            WorkloadId::Rnn2 => "RNN-2",
            WorkloadId::Rnn3 => "RNN-3",
        }
    }

    /// True for the recurrent workloads.
    #[must_use]
    pub fn is_rnn(self) -> bool {
        matches!(self, WorkloadId::Rnn1 | WorkloadId::Rnn2 | WorkloadId::Rnn3)
    }
}

impl std::fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One dense workload: a named DNN whose layer list depends on the batch size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DenseWorkload {
    /// Workload identity.
    pub id: WorkloadId,
}

impl DenseWorkload {
    /// Creates the workload wrapper for an id.
    #[must_use]
    pub fn new(id: WorkloadId) -> Self {
        DenseWorkload { id }
    }

    /// Human-readable network name.
    #[must_use]
    pub fn network_name(&self) -> &'static str {
        match self.id {
            WorkloadId::Cnn1 => "AlexNet",
            WorkloadId::Cnn2 => "GoogLeNet",
            WorkloadId::Cnn3 => "ResNet-50",
            WorkloadId::Rnn1 => "DeepBench GEMV RNN (h=2560)",
            WorkloadId::Rnn2 => "DeepBench LSTM (h=1760)",
            WorkloadId::Rnn3 => "DeepBench LSTM (h=2048)",
        }
    }

    /// The workload's layers at the given batch size.
    #[must_use]
    pub fn layers(&self, batch: u64) -> Vec<Layer> {
        match self.id {
            WorkloadId::Cnn1 => cnn::alexnet(batch),
            WorkloadId::Cnn2 => cnn::googlenet(batch),
            WorkloadId::Cnn3 => cnn::resnet50(batch),
            WorkloadId::Rnn1 => rnn::rnn1(batch),
            WorkloadId::Rnn2 => rnn::rnn2(batch),
            WorkloadId::Rnn3 => rnn::rnn3(batch),
        }
    }

    /// The representative "common layer" of the network, used for the
    /// large-batch sensitivity study of Section VI-C.
    #[must_use]
    pub fn common_layer(&self, batch: u64) -> Layer {
        match self.id {
            // The most frequently occurring convolution shape of each CNN.
            WorkloadId::Cnn1 => Layer::conv2d("common", batch, 256, 13, 13, 256, 3, 3, 1, 1),
            WorkloadId::Cnn2 => Layer::conv2d("common", batch, 512, 14, 14, 256, 3, 3, 1, 1),
            WorkloadId::Cnn3 => Layer::conv2d("common", batch, 256, 28, 28, 256, 3, 3, 1, 1),
            // RNNs are dominated by their (single) recurrent cell; one step.
            WorkloadId::Rnn1 => Layer::rnn_cell("common", batch, 2560, 2560, 1),
            WorkloadId::Rnn2 => Layer::lstm_cell("common", batch, 1760, 1760, 1),
            WorkloadId::Rnn3 => Layer::lstm_cell("common", batch, 2048, 2048, 1),
        }
    }
}

/// The full dense suite (CNN-1..3, RNN-1..3).
#[must_use]
pub fn dense_suite() -> Vec<DenseWorkload> {
    WorkloadId::ALL
        .iter()
        .copied()
        .map(DenseWorkload::new)
        .collect()
}

/// The sparse (embedding) suite: NCF and DLRM.
#[must_use]
pub fn sparse_suite() -> Vec<EmbeddingModel> {
    vec![EmbeddingModel::ncf(), EmbeddingModel::dlrm()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_six_dense_workloads() {
        let suite = dense_suite();
        assert_eq!(suite.len(), 6);
        let labels: Vec<_> = suite.iter().map(|w| w.id.label()).collect();
        assert_eq!(
            labels,
            ["CNN-1", "CNN-2", "CNN-3", "RNN-1", "RNN-2", "RNN-3"]
        );
    }

    #[test]
    fn every_workload_produces_valid_layers_at_every_batch() {
        for workload in dense_suite() {
            for &batch in &DENSE_BATCH_SIZES {
                let layers = workload.layers(batch);
                assert!(!layers.is_empty());
                for layer in &layers {
                    assert!(
                        layer.validate().is_ok(),
                        "{}: {}",
                        workload.network_name(),
                        layer.name()
                    );
                }
            }
        }
    }

    #[test]
    fn common_layers_are_valid_at_large_batches() {
        for workload in dense_suite() {
            for batch in [32, 64, 128] {
                assert!(workload.common_layer(batch).validate().is_ok());
            }
        }
    }

    #[test]
    fn rnn_classification() {
        assert!(WorkloadId::Rnn1.is_rnn());
        assert!(!WorkloadId::Cnn3.is_rnn());
    }

    #[test]
    fn display_matches_figure_labels() {
        assert_eq!(WorkloadId::Cnn1.to_string(), "CNN-1");
        assert_eq!(format!("{}", WorkloadId::Rnn3), "RNN-3");
    }

    #[test]
    fn sparse_suite_has_ncf_and_dlrm() {
        let sparse = sparse_suite();
        assert_eq!(sparse.len(), 2);
        assert_eq!(sparse[0].name(), "NCF");
        assert_eq!(sparse[1].name(), "DLRM");
    }
}
