//! A tour of the virtual-memory substrate and the NeuMMU front end.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example pagetable_tour
//! ```
//!
//! The example builds a two-NPU system, maps a weight segment and a lazily
//! populated embedding segment, then walks through the mechanisms the rest of
//! the workspace relies on: full page-table walks, TLB/PRMB/TPreg behaviour
//! under a translation burst, demand-paging faults and page migration.

use neummu::mmu::{AddressTranslator, MmuConfig, TranslationEngine, TranslationSource};
use neummu::vmem::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A host plus two NPUs, each with 1 GiB of local memory.
    let mut memory = PhysicalMemory::with_npus(2, 1 << 30);
    let mut space = AddressSpace::new("tour");

    // Weights live in NPU0 memory and are mapped eagerly.
    let weights = space.alloc_segment(
        "weights",
        2 << 20,
        SegmentOptions::new(MemNode::Npu(0), PageSize::Size4K),
        &mut memory,
    )?;
    // A (small) embedding shard lives on NPU1 and is mapped on first touch.
    let embeddings = space.alloc_segment(
        "embeddings",
        8 << 20,
        SegmentOptions::new(MemNode::Npu(1), PageSize::Size4K).lazy(),
        &mut memory,
    )?;

    // 1. Anatomy of a page-table walk.
    let va = weights.addr_at(0x1234);
    let walk = space.walk(va);
    println!("walking {va}:");
    for step in &walk.steps {
        println!(
            "  {:?} index {} -> {:?}",
            step.level, step.index, step.outcome
        );
    }
    let translation = walk.translation.expect("weights are eagerly mapped");
    println!(
        "  => {} on {} ({} memory accesses)\n",
        translation.pa,
        translation.node,
        walk.memory_accesses()
    );

    // 2. A translation burst through NeuMMU: the first transaction of a page
    //    walks, later transactions to the same page merge, and the TPreg lets
    //    subsequent walks skip the upper levels.
    let mut mmu = TranslationEngine::new(MmuConfig::neummu());
    let mut cycle = 0;
    let mut sources = Vec::new();
    for i in 0..16u64 {
        let outcome = mmu.translate(space.page_table(), weights.addr_at(i * 512), cycle);
        cycle = outcome.accept_cycle + 1;
        sources.push(outcome.source);
    }
    let walks = sources
        .iter()
        .filter(|s| matches!(s, TranslationSource::PageWalk { .. }))
        .count();
    let merged = sources
        .iter()
        .filter(|s| matches!(s, TranslationSource::Merged))
        .count();
    println!(
        "burst of 16 x 512-byte transactions: {walks} page walks, {merged} merged, {} TLB hits",
        mmu.stats().tlb_hits
    );
    println!(
        "walk memory accesses so far: {} (TPreg skipped {} level reads)\n",
        mmu.stats().walk_memory_accesses,
        mmu.stats().tpreg_skipped_levels
    );

    // 3. Demand paging: the first touch of a lazy page faults it in on its
    //    home node (NPU1)...
    let remote_va = embeddings.addr_at(5 * 4096 + 128);
    let fault = space.ensure_mapped(remote_va, &mut memory)?;
    println!("first touch of {remote_va}: faulted = {}", fault.faulted());
    println!("  resident on {}", fault.translation().node);

    // ...and the page can then be migrated into NPU0's local memory.
    space.migrate_page(remote_va, MemNode::Npu(0), &mut memory)?;
    mmu.invalidate_page(remote_va);
    let after = space.translate(remote_va)?;
    println!("  after migration: resident on {}", after.node);
    println!(
        "  NPU0 memory in use: {} KiB, NPU1 memory in use: {} KiB",
        memory.used_bytes(MemNode::Npu(0))? / 1024,
        memory.used_bytes(MemNode::Npu(1))? / 1024
    );

    println!("\npage-table stats: {:?}", space.page_table().stats());
    Ok(())
}
