//! Quickstart: simulate one convolution layer under three MMU design points.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example builds the Table I NPU, lowers a single ResNet-style
//! convolution onto it, and compares the oracular MMU, the baseline IOMMU and
//! NeuMMU. It prints the normalized performance and the translation statistics
//! that explain the difference.

use neummu::mmu::MmuConfig;
use neummu::npu::Layer;
use neummu::sim::dense::{DenseSimConfig, DenseSimulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-sized convolution: 64 -> 64 channels over a 56x56 feature map.
    let layer = Layer::conv2d("res2a_b", 4, 64, 56, 56, 64, 3, 3, 1, 1);

    let oracle = DenseSimulator::new(DenseSimConfig::with_mmu(MmuConfig::oracle()))
        .simulate_layer(&layer)?;

    println!(
        "layer: {} ({} tiles, {} translation requests per step)",
        layer.name(),
        oracle.layers[0].tile_count,
        oracle.layers[0].translation_requests
    );
    println!("oracle MMU: {} cycles\n", oracle.total_cycles);

    println!(
        "{:<14} {:>12} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "MMU", "cycles", "norm. perf", "TLB hits", "merged", "page walks", "walk reads"
    );
    for (name, config) in [
        ("oracle", MmuConfig::oracle()),
        ("IOMMU", MmuConfig::baseline_iommu()),
        ("NeuMMU", MmuConfig::neummu()),
    ] {
        let run = DenseSimulator::new(DenseSimConfig::with_mmu(config)).simulate_layer(&layer)?;
        println!(
            "{:<14} {:>12} {:>12.3} {:>10} {:>10} {:>12} {:>10}",
            name,
            run.total_cycles,
            run.normalized_to(&oracle),
            run.translation.tlb_hits,
            run.translation.merged,
            run.translation.walks,
            run.translation.walk_memory_accesses,
        );
    }

    println!(
        "\nThe baseline IOMMU is throttled by its 8 page-table walkers; NeuMMU's \
         request merging (PRMB), 128 walkers and translation path registers \
         recover nearly all of the oracle's performance."
    );
    Ok(())
}
