//! Multi-NPU recommender example: gathering remote embeddings with and
//! without an NPU MMU.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example recommender_numa [batch]
//! ```
//!
//! The example model-parallelizes DLRM's embedding tables across four NPUs and
//! measures one NPU's inference latency under four remote-gather mechanisms:
//! CPU-relayed copies (the only option for an MMU-less NPU), fine-grained NUMA
//! loads over PCIe and over the NPU-to-NPU link, and page-granular demand
//! paging.

use neummu::mem::interconnect::TransferKind;
use neummu::mmu::MmuConfig;
use neummu::sim::embedding::{EmbeddingSimConfig, EmbeddingSimulator, GatherStrategy};
use neummu::workloads::EmbeddingModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let model = EmbeddingModel::dlrm();
    println!(
        "DLRM: {} embedding tables, {:.1} GB of embeddings, {} lookups per sample, batch {batch}\n",
        model.tables().len(),
        model.total_embedding_bytes() as f64 / (1u64 << 30) as f64,
        model.lookups_per_sample(),
    );

    let sim = EmbeddingSimulator::new(EmbeddingSimConfig::with_mmu(MmuConfig::neummu()));
    let strategies = [
        GatherStrategy::HostRelayedCopy,
        GatherStrategy::NumaDirect {
            link: TransferKind::Pcie,
        },
        GatherStrategy::NumaDirect {
            link: TransferKind::NpuLink,
        },
        GatherStrategy::DemandPaging {
            link: TransferKind::NpuLink,
        },
    ];

    let baseline = sim.simulate(&model, batch, GatherStrategy::HostRelayedCopy)?;
    println!(
        "{:<22} {:>12} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "strategy", "total", "gemm", "reduce", "else", "emb lookup", "vs base"
    );
    for strategy in strategies {
        let result = sim.simulate(&model, batch, strategy)?;
        println!(
            "{:<22} {:>12} {:>10} {:>10} {:>10} {:>12} {:>9.2}x",
            strategy.label(),
            result.total_cycles(),
            result.gemm_cycles,
            result.reduction_cycles,
            result.other_cycles,
            result.embedding_gather_cycles,
            baseline.total_cycles() as f64 / result.total_cycles() as f64,
        );
    }

    println!(
        "\nWithout an MMU the NPU cannot reference remote memory, so every remote \
         embedding takes two PCIe hops through host pinned memory. NeuMMU lets the \
         NPU page-fault on remote pages and either load them in place (NUMA) or \
         migrate them, removing the CPU from the critical path."
    );
    Ok(())
}
