//! Full-network example: ResNet-50 inference under different MMU designs.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example resnet_translation [batch]
//! ```
//!
//! The example executes the complete ResNet-50 (CNN-3) layer sequence on the
//! baseline NPU at the requested batch size (default 1), once per MMU design
//! point, and reports per-design normalized performance plus the five layers
//! that suffer the most from address-translation overhead.

use neummu::mmu::MmuConfig;
use neummu::sim::dense::{DenseSimConfig, DenseSimulator, WorkloadResult};
use neummu::workloads::{DenseWorkload, WorkloadId};

fn run(layers: &[neummu::npu::Layer], mmu: MmuConfig) -> WorkloadResult {
    DenseSimulator::new(DenseSimConfig::with_mmu(mmu))
        .simulate_workload(layers)
        .expect("ResNet-50 layers are valid for the Table I NPU")
}

fn main() {
    let batch: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);
    let workload = DenseWorkload::new(WorkloadId::Cnn3);
    let layers = workload.layers(batch);
    println!(
        "{} at batch {batch}: {} layers\n",
        workload.network_name(),
        layers.len()
    );

    let oracle = run(&layers, MmuConfig::oracle());
    let iommu = run(&layers, MmuConfig::baseline_iommu());
    let neummu = run(&layers, MmuConfig::neummu());

    println!(
        "{:<10} {:>14} {:>12} {:>14} {:>16}",
        "MMU", "total cycles", "norm. perf", "page walks", "walk DRAM reads"
    );
    for (name, result) in [("oracle", &oracle), ("IOMMU", &iommu), ("NeuMMU", &neummu)] {
        println!(
            "{:<10} {:>14} {:>12.3} {:>14} {:>16}",
            name,
            result.total_cycles,
            result.normalized_to(&oracle),
            result.translation.walks,
            result.translation.walk_memory_accesses
        );
    }

    // Rank layers by how much the baseline IOMMU slows them down.
    let mut slowdowns: Vec<(String, f64)> = iommu
        .layers
        .iter()
        .zip(oracle.layers.iter())
        .map(|(i, o)| {
            (
                i.layer_name.clone(),
                i.total_cycles as f64 / o.total_cycles.max(1) as f64,
            )
        })
        .collect();
    slowdowns.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

    println!("\nlayers hit hardest by the baseline IOMMU:");
    for (name, slowdown) in slowdowns.iter().take(5) {
        println!("  {name:<24} {slowdown:>6.1}x slower than oracle");
    }

    println!(
        "\nNeuMMU keeps the whole network within {:.2}% of the oracular MMU.",
        (1.0 - neummu.normalized_to(&oracle)) * 100.0
    );
}
