#!/usr/bin/env bash
# Runs the workspace determinism/hot-path lint pass (same invocation as the
# CI gate). Pass --json for machine-readable output, or extra args verbatim.
#
#   ./scripts/lint.sh            # human table, exit 1 on findings
#   ./scripts/lint.sh --json     # JSON document for tooling
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run -q -p neummu_lint -- --workspace "$@"
