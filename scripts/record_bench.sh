#!/usr/bin/env bash
# Records the perf trajectory of the translation hot path into a JSON file
# (default BENCH_PR7.json): per-request translate latency from the
# mmu_microbench Criterion targets — including the ASID-tagged multi-tenant
# burst stream and the run-coalesced burst path (one TLB touch per distinct
# page) next to its per-transaction counterpart — plus the wall-clock time of
# a full-scale serial artifact regeneration, run twice (tracing off and
# `--profile-trace` on) so `trace_overhead_pct` records what the binary
# event-trace subsystem costs when enabled.
#
# Usage: scripts/record_bench.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_PR7.json}"

echo "building release binaries..." >&2
cargo build --release >&2

echo "running mmu_microbench (criterion quick mode)..." >&2
bench_log="$(mktemp)"
cargo bench --bench mmu_microbench 2>/dev/null | tee /dev/stderr > "$bench_log"

# "bench <group>/<id>: <dur>/iter (<rate> elem/s)" -> ns per element.
ns_per_elem() {
    local id="$1"
    local rate
    rate="$(sed -n "s|^bench ${id}: .* (\([0-9.]*\) elem/s)$|\1|p" "$bench_log")"
    if [ -z "$rate" ]; then
        echo "null"
    else
        python3 -c "print(f'{1e9 / ${rate}:.2f}')"
    fi
}

translate_neummu_ns="$(ns_per_elem 'translation_engine/neummu')"
translate_iommu_ns="$(ns_per_elem 'translation_engine/baseline_iommu')"
probe_ns="$(ns_per_elem 'page_table/probe_4k_mapped')"
walk_ns="$(ns_per_elem 'page_table/walk_4k_mapped')"
oracle_ns="$(ns_per_elem 'oracle/memoized_burst_stream')"
multi_tenant_ns="$(ns_per_elem 'translation_engine/multi_tenant_4asid_burst64')"
run_coalesced_ns="$(ns_per_elem 'translation_engine/run_coalesced_burst')"

echo "running full-scale serial regeneration (tracing off)..." >&2
regen_out="$(mktemp -d)"
start_ns="$(date +%s%N)"
./target/release/neummu_experiments --threads 1 --out "$regen_out" > /dev/null
end_ns="$(date +%s%N)"
regen_s="$(python3 -c "print(f'{(${end_ns} - ${start_ns}) / 1e9:.2f}')")"
rm -rf "$regen_out"

echo "running full-scale serial regeneration (--profile-trace on)..." >&2
regen_out="$(mktemp -d)"
trace_file="$(mktemp -u).trace"
start_ns="$(date +%s%N)"
./target/release/neummu_experiments --threads 1 --out "$regen_out" \
    --profile-trace "$trace_file" > /dev/null
end_ns="$(date +%s%N)"
traced_regen_s="$(python3 -c "print(f'{(${end_ns} - ${start_ns}) / 1e9:.2f}')")"
trace_events="$(./target/release/neummu_profile "$trace_file" --top 0 \
    | sed -n 's|^trace .*: \([0-9]*\) events .*|\1|p')"
trace_overhead_pct="$(python3 -c \
    "print(f'{(${traced_regen_s} / max(${regen_s}, 1e-9) - 1) * 100:.1f}')")"
rm -rf "$regen_out" "$trace_file" "$bench_log"

cat > "$out" <<EOF
{
  "recorded_at": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "translate_ns_per_req": {
    "neummu": ${translate_neummu_ns},
    "neummu_run_coalesced": ${run_coalesced_ns},
    "baseline_iommu": ${translate_iommu_ns},
    "multi_tenant_4asid_burst64": ${multi_tenant_ns}
  },
  "page_table_ns_per_traversal": {
    "probe": ${probe_ns},
    "walk": ${walk_ns}
  },
  "oracle_memoized_ns_per_req": ${oracle_ns},
  "full_scale_regen_serial_seconds": ${regen_s},
  "full_scale_regen_traced_seconds": ${traced_regen_s},
  "trace_overhead_pct": ${trace_overhead_pct},
  "trace_events": ${trace_events:-null}
}
EOF

echo "wrote $out" >&2
cat "$out"
