#!/usr/bin/env bash
# Records the perf trajectory of the translation hot path into a JSON file
# (default BENCH_PR10.json): per-request translate latency from the
# mmu_microbench Criterion targets — including the ASID-tagged multi-tenant
# burst stream, the run-coalesced burst path (one TLB touch per distinct
# page) next to its per-transaction counterpart, the fault-storm recovery
# path (translating through 10% injected device faults with the full
# retry/watchdog/quarantine/retransmit stack armed) and the end-to-end
# open-loop serving leg (arrivals -> admission queues -> policy -> shared
# engine, ns per completed request) — plus the wall-clock time of a
# full-scale serial artifact regeneration (which now includes the serving
# and resilience families), run five ways:
#
#   * tracing off (the plain reference),
#   * `--profile-trace` on (`trace_overhead_pct` = what tracing costs),
#   * `--store` on a cold store (`store_overhead_pct` = what slot commits and
#     family journaling cost on a run that computes everything; budget < 3%),
#   * `--store` on the now-warm store (`store_warm_regen_seconds` = the resume
#     payoff: every family restored from its journal, nothing simulated),
#   * `--only` the pre-fault families (`faults_disabled_overhead_pct` = what
#     this binary, which carries the fault gate in the engine, costs on the
#     exact family list the previous baseline timed; compared against
#     BENCH_PR9.json's full_scale_regen_serial_seconds; budget < 2%).
#
# Usage: scripts/record_bench.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_PR10.json}"

# Every family the previous baseline (BENCH_PR9.json) regenerated — i.e.
# everything except the new `resilience` family. Timing this list on the
# current binary isolates the faults-disabled engine overhead from the cost
# of the new family itself.
PREFAULT_FAMILIES="table1,fig06,fig07,fig08,fig10,fig11,fig12a,fig12b,fig13,fig14,mmu_cache,summary,largepage,spatial,sensitivity,fig15,fig16,multitenant,serving"

echo "building release binaries..." >&2
cargo build --release >&2

echo "running mmu_microbench (criterion quick mode)..." >&2
bench_log="$(mktemp)"
cargo bench --bench mmu_microbench 2>/dev/null | tee /dev/stderr > "$bench_log"

# "bench <group>/<id>: <dur>/iter (<rate> elem/s)" -> ns per element.
ns_per_elem() {
    local id="$1"
    local rate
    rate="$(sed -n "s|^bench ${id}: .* (\([0-9.]*\) elem/s)$|\1|p" "$bench_log")"
    if [ -z "$rate" ]; then
        echo "null"
    else
        python3 -c "print(f'{1e9 / ${rate}:.2f}')"
    fi
}

translate_neummu_ns="$(ns_per_elem 'translation_engine/neummu')"
translate_iommu_ns="$(ns_per_elem 'translation_engine/baseline_iommu')"
probe_ns="$(ns_per_elem 'page_table/probe_4k_mapped')"
walk_ns="$(ns_per_elem 'page_table/walk_4k_mapped')"
oracle_ns="$(ns_per_elem 'oracle/memoized_burst_stream')"
multi_tenant_ns="$(ns_per_elem 'translation_engine/multi_tenant_4asid_burst64')"
run_coalesced_ns="$(ns_per_elem 'translation_engine/run_coalesced_burst')"
serving_request_ns="$(ns_per_elem 'serving/open_loop_smoke_rr')"
resilience_recovery_ns="$(ns_per_elem 'resilience/fault_storm_recovery')"
resilience_disarmed_ns="$(ns_per_elem 'resilience/disarmed_plan')"

# Times one full-scale serial regeneration; extra flags via "$@".
timed_regen_once() {
    local regen_out start_ns end_ns
    regen_out="$(mktemp -d)"
    start_ns="$(date +%s%N)"
    ./target/release/neummu_experiments --threads 1 --out "$regen_out" "$@" > /dev/null
    end_ns="$(date +%s%N)"
    rm -rf "$regen_out"
    python3 -c "print(f'{(${end_ns} - ${start_ns}) / 1e9:.2f}')"
}

# Regeneration timings compare configurations a few percent apart — less than
# this box's run-to-run noise — so the four configurations are INTERLEAVED
# round-robin for $REPS passes (ambient load lands on every configuration,
# not on whichever block ran during a slow phase) and each summary number is
# the MIN of its samples: the workload is deterministic and the noise purely
# additive (co-tenants, scheduler), so the minimum is the reading closest to
# the true cost and the overhead ratios are formed from minima. (The store's
# real added work is tiny: ~78 slot commits fsync in about 60 ms total, under
# 1% of the run.) The raw samples are recorded alongside the summary numbers
# so a noisy capture is visible as such.
REPS=5

min_of() {
    printf '%s\n' "$@" | python3 -c \
        "import sys; print(f'{min(map(float, sys.stdin.read().split())):.2f}')"
}

json_list() {
    python3 -c "print('[' + ', '.join('''$*'''.split()) + ']')"
}

trace_file="$(mktemp -u).trace"
warm_store_dir="$(mktemp -d)"
timed_regen_once --store "$warm_store_dir" > /dev/null   # pre-warm once
plain_times=""; traced_times=""; cold_times=""; warm_times=""; prefault_times=""
for rep in $(seq "$REPS"); do
    echo "timing full-scale serial regenerations, pass ${rep}/${REPS} (plain / traced / cold store / warm store / pre-fault families)..." >&2
    plain_times="$plain_times $(timed_regen_once)"
    rm -f "$trace_file"
    traced_times="$traced_times $(timed_regen_once --profile-trace "$trace_file")"
    cold_store_dir="$(mktemp -d)"   # fresh store per rep: every run is truly cold
    cold_times="$cold_times $(timed_regen_once --store "$cold_store_dir")"
    rm -rf "$cold_store_dir"
    warm_times="$warm_times $(timed_regen_once --store "$warm_store_dir")"
    prefault_times="$prefault_times $(timed_regen_once --only "$PREFAULT_FAMILIES")"
done

regen_s="$(min_of $plain_times)"
traced_regen_s="$(min_of $traced_times)"
store_cold_regen_s="$(min_of $cold_times)"
store_warm_regen_s="$(min_of $warm_times)"
prefault_regen_s="$(min_of $prefault_times)"
# The faults-disabled overhead: this binary on the previous baseline's family
# list vs the time BENCH_PR9.json recorded for that same list (null when the
# baseline file is absent — the comparison is machine-local).
faults_disabled_overhead_pct="$(python3 - <<PY
import json, os
try:
    prev = json.load(open("BENCH_PR9.json"))["full_scale_regen_serial_seconds"]
    print(f"{(${prefault_regen_s} / prev - 1) * 100:.1f}")
except (OSError, KeyError, ValueError):
    print("null")
PY
)"
trace_events="$(./target/release/neummu_profile "$trace_file" --top 0 \
    | sed -n 's|^trace .*: \([0-9]*\) events .*|\1|p')"
trace_overhead_pct="$(python3 -c \
    "print(f'{(${traced_regen_s} / max(${regen_s}, 1e-9) - 1) * 100:.1f}')")"
store_overhead_pct="$(python3 -c \
    "print(f'{(${store_cold_regen_s} / max(${regen_s}, 1e-9) - 1) * 100:.1f}')")"
store_resume_speedup="$(python3 -c \
    "print(f'{${regen_s} / max(${store_warm_regen_s}, 1e-9):.1f}')")"
rm -rf "$trace_file" "$warm_store_dir" "$bench_log"

cat > "$out" <<EOF
{
  "recorded_at": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "translate_ns_per_req": {
    "neummu": ${translate_neummu_ns},
    "neummu_run_coalesced": ${run_coalesced_ns},
    "baseline_iommu": ${translate_iommu_ns},
    "multi_tenant_4asid_burst64": ${multi_tenant_ns}
  },
  "page_table_ns_per_traversal": {
    "probe": ${probe_ns},
    "walk": ${walk_ns}
  },
  "oracle_memoized_ns_per_req": ${oracle_ns},
  "serving_request_ns": ${serving_request_ns},
  "resilience_recovery_ns": ${resilience_recovery_ns},
  "resilience_disarmed_plan_ns": ${resilience_disarmed_ns},
  "full_scale_regen_serial_seconds": ${regen_s},
  "full_scale_regen_traced_seconds": ${traced_regen_s},
  "trace_overhead_pct": ${trace_overhead_pct},
  "trace_events": ${trace_events:-null},
  "full_scale_regen_store_cold_seconds": ${store_cold_regen_s},
  "full_scale_regen_store_warm_seconds": ${store_warm_regen_s},
  "store_overhead_pct": ${store_overhead_pct},
  "store_resume_speedup": ${store_resume_speedup},
  "prefault_families_regen_seconds": ${prefault_regen_s},
  "faults_disabled_overhead_pct": ${faults_disabled_overhead_pct},
  "regen_samples_interleaved_seconds": {
    "plain": $(json_list $plain_times),
    "traced": $(json_list $traced_times),
    "store_cold": $(json_list $cold_times),
    "store_warm": $(json_list $warm_times),
    "prefault_families": $(json_list $prefault_times)
  }
}
EOF

echo "wrote $out" >&2
cat "$out"
