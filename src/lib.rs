//! Facade crate for the NeuMMU reproduction.
//!
//! Re-exports the workspace crates under a single name so that examples and
//! downstream users can depend on `neummu` alone.
//!
//! ```
//! use neummu::mmu::MmuConfig;
//! let cfg = MmuConfig::neummu();
//! assert!(cfg.num_ptws >= 1);
//! ```

pub use neummu_energy as energy;
pub use neummu_mem as mem;
pub use neummu_mmu as mmu;
pub use neummu_npu as npu;
pub use neummu_sim as sim;
pub use neummu_vmem as vmem;
pub use neummu_workloads as workloads;
