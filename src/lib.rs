//! Facade crate for the NeuMMU reproduction.
//!
//! Re-exports the workspace crates under a single name so that examples and
//! downstream users can depend on `neummu` alone.
//!
//! ```
//! use neummu::mmu::MmuConfig;
//! let cfg = MmuConfig::neummu();
//! assert!(cfg.num_ptws >= 1);
//! ```

#![deny(missing_docs)]

pub use neummu_energy as energy;
pub use neummu_mem as mem;
pub use neummu_mmu as mmu;
pub use neummu_npu as npu;
pub use neummu_sim as sim;
pub use neummu_store as store;
pub use neummu_trace as trace;
pub use neummu_vmem as vmem;
pub use neummu_workloads as workloads;

/// Compile-time and behavioural lock on the workspace's public API surface.
///
/// Downstream crates (the experiments binary, benches, integration tests and
/// external users of the facade) rely on these exact paths and constructor
/// names. If a refactor renames or moves any of them, this module fails to
/// compile or its assertions fail — change it deliberately, together with the
/// dependents, never as a side effect.
#[cfg(test)]
mod workspace_sanity {
    #[test]
    fn mmu_config_constructors_are_stable() {
        // The three design points every experiment is built from.
        let neummu = crate::mmu::MmuConfig::neummu();
        let baseline = crate::mmu::MmuConfig::baseline_iommu();
        let oracle = crate::mmu::MmuConfig::oracle();
        assert!(neummu.num_ptws >= 1);
        assert!(baseline.num_ptws >= 1);
        // NeuMMU is the throughput-centric point: strictly more walkers than
        // the baseline IOMMU (128 vs 8 in the paper's Table I).
        assert!(neummu.num_ptws > baseline.num_ptws);
        let _ = oracle;
        // Builder-style refinements keep their names and chain.
        let tuned = crate::mmu::MmuConfig::neummu()
            .with_ptws(64)
            .with_prmb_slots(8)
            .with_tlb_entries(1024)
            .with_tpreg(true);
        assert_eq!(tuned.num_ptws, 64);
    }

    #[test]
    fn facade_reexport_paths_are_stable() {
        // Each line is a distinct facade path used by tests/examples; this
        // test exists to break loudly if a re-export is dropped or renamed.
        let _engine: fn() -> crate::mmu::TranslationEngine =
            || crate::mmu::TranslationEngine::new(crate::mmu::MmuConfig::neummu());
        let _dense: fn() -> crate::sim::dense::DenseSimulator = || {
            crate::sim::dense::DenseSimulator::new(crate::sim::dense::DenseSimConfig::with_mmu(
                crate::mmu::MmuConfig::neummu(),
            ))
        };
        let _embedding: fn() -> crate::sim::embedding::EmbeddingSimConfig =
            || crate::sim::embedding::EmbeddingSimConfig::with_mmu(crate::mmu::MmuConfig::neummu());
        let _npu = crate::npu::NpuConfig::tpu_like();
        let _dram = crate::mem::DramModel::tpu_like();
        let _interconnect = crate::mem::interconnect::InterconnectConfig::table1();
        let _page_size = crate::vmem::PageSize::Size4K;
        let _asid = crate::vmem::Asid::GLOBAL;
        let _registry = crate::vmem::AddressSpaceRegistry::new();
        let _scheduler: fn() -> crate::sim::TenantScheduler = || {
            crate::sim::TenantScheduler::new(crate::sim::MultiTenantConfig::with_mmu(
                crate::mmu::MmuConfig::neummu(),
            ))
        };
        let _sink: fn() -> crate::trace::TraceSink = crate::trace::TraceSink::in_memory;
        let _ncf = crate::workloads::EmbeddingModel::ncf();
        let _dlrm = crate::workloads::EmbeddingModel::dlrm();
        let _meter = crate::energy::EnergyMeter::default();
    }

    #[test]
    fn dense_and_sparse_suites_are_reachable() {
        let dense = crate::workloads::dense_suite();
        assert!(!dense.is_empty(), "dense suite lost its workloads");
        let sparse = crate::workloads::sparse_suite();
        assert!(!sparse.is_empty(), "sparse suite lost its models");
    }
}
