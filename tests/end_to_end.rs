//! Cross-crate integration tests: the substrates, the MMU and the simulators
//! working together through the public facade crate.

use neummu::mmu::{AddressTranslator, MmuConfig, TranslationEngine, TranslationSource};
use neummu::npu::{Layer, NpuConfig, TilingPlan};
use neummu::sim::dense::{DenseSimConfig, DenseSimulator, WorkloadResult};
use neummu::vmem::prelude::*;

/// A small but non-trivial layer used throughout these tests: large enough to
/// need several tiles and thousands of translations, small enough to simulate
/// quickly in debug builds.
fn probe_layer() -> Layer {
    Layer::lstm_cell("probe_lstm", 1, 768, 768, 2)
}

fn simulate(layer: &Layer, mmu: MmuConfig) -> WorkloadResult {
    DenseSimulator::new(DenseSimConfig::with_mmu(mmu))
        .simulate_layer(layer)
        .unwrap()
}

#[test]
fn facade_reexports_are_usable_together() {
    // Build a page table through `vmem`, translate through `mmu`, and check
    // the layer plumbing from `npu` — all via the facade crate paths.
    let mut memory = PhysicalMemory::with_npus(1, 1 << 30);
    let mut space = AddressSpace::new("integration");
    let seg = space
        .alloc_segment(
            "data",
            64 * 4096,
            SegmentOptions::new(MemNode::Npu(0), PageSize::Size4K),
            &mut memory,
        )
        .unwrap();
    let mut mmu = TranslationEngine::new(MmuConfig::neummu());
    let outcome = mmu.translate(space.page_table(), seg.start(), 0);
    assert!(matches!(outcome.source, TranslationSource::PageWalk { .. }));

    let plan = TilingPlan::for_layer(&probe_layer(), &NpuConfig::tpu_like()).unwrap();
    assert!(plan.tile_count() >= 1);
}

#[test]
fn mmu_ordering_holds_end_to_end() {
    let layer = probe_layer();
    let oracle = simulate(&layer, MmuConfig::oracle());
    let neummu = simulate(&layer, MmuConfig::neummu());
    let iommu = simulate(&layer, MmuConfig::baseline_iommu());

    assert!(oracle.total_cycles <= neummu.total_cycles);
    assert!(neummu.total_cycles <= iommu.total_cycles);

    // NeuMMU stays close to the oracle; the baseline IOMMU does not.
    assert!(neummu.normalized_to(&oracle) > 0.9);
    assert!(iommu.normalized_to(&oracle) < 0.6);
}

#[test]
fn translation_work_is_conserved_across_designs() {
    // Every design point sees exactly the same request stream; they only
    // differ in how the requests are satisfied.
    let layer = probe_layer();
    let oracle = simulate(&layer, MmuConfig::oracle());
    let neummu = simulate(&layer, MmuConfig::neummu());
    let iommu = simulate(&layer, MmuConfig::baseline_iommu());
    assert_eq!(oracle.translation.requests, neummu.translation.requests);
    assert_eq!(oracle.translation.requests, iommu.translation.requests);
    // Merging plus TLB hits plus walks accounts for every request.
    for result in [&neummu, &iommu] {
        assert_eq!(
            result.translation.requests,
            result.translation.tlb_hits + result.translation.merged + result.translation.walks
        );
    }
    // The PRMB prevents redundant walks: NeuMMU walks at most one per page
    // touched, while the baseline walks once per transaction.
    assert!(neummu.translation.walks < iommu.translation.walks / 2);
}

#[test]
fn dense_and_spatial_npus_both_benefit_from_neummu() {
    let layer = Layer::conv2d("conv", 1, 64, 28, 28, 128, 3, 3, 1, 1);
    for npu in [NpuConfig::tpu_like(), NpuConfig::spatial_array()] {
        let mut base_cfg = DenseSimConfig::with_mmu(MmuConfig::oracle());
        base_cfg.npu = npu;
        let oracle = DenseSimulator::new(base_cfg)
            .simulate_layer(&layer)
            .unwrap();

        let mut iommu_cfg = DenseSimConfig::with_mmu(MmuConfig::baseline_iommu());
        iommu_cfg.npu = npu;
        let iommu = DenseSimulator::new(iommu_cfg)
            .simulate_layer(&layer)
            .unwrap();

        let mut neummu_cfg = DenseSimConfig::with_mmu(MmuConfig::neummu());
        neummu_cfg.npu = npu;
        let neummu = DenseSimulator::new(neummu_cfg)
            .simulate_layer(&layer)
            .unwrap();

        assert!(neummu.normalized_to(&oracle) > iommu.normalized_to(&oracle));
    }
}

#[test]
fn page_migration_is_visible_to_the_translation_engine() {
    let mut memory = PhysicalMemory::with_npus(2, 1 << 30);
    let mut space = AddressSpace::new("migration");
    let seg = space
        .alloc_segment(
            "emb",
            32 * 4096,
            SegmentOptions::new(MemNode::Npu(1), PageSize::Size4K),
            &mut memory,
        )
        .unwrap();
    let va = seg.addr_at(3 * 4096);
    let mut mmu = TranslationEngine::new(MmuConfig::neummu());

    // Warm the TLB with the remote mapping.
    let first = mmu.translate(space.page_table(), va, 0);
    let warm = mmu.translate(space.page_table(), va, first.complete_cycle + 1);
    assert_eq!(warm.source, TranslationSource::TlbHit);
    assert_eq!(space.translate(va).unwrap().node, MemNode::Npu(1));

    // Migrate and invalidate; the next translation must walk again and see
    // the new node.
    space
        .migrate_page(va, MemNode::Npu(0), &mut memory)
        .unwrap();
    mmu.invalidate_page(va);
    let after = mmu.translate(space.page_table(), va, warm.complete_cycle + 1);
    assert!(matches!(after.source, TranslationSource::PageWalk { .. }));
    assert_eq!(space.translate(va).unwrap().node, MemNode::Npu(0));
}

#[test]
fn larger_batches_increase_work_monotonically() {
    let sim = DenseSimulator::new(DenseSimConfig::with_mmu(MmuConfig::oracle()));
    let mut previous = 0u64;
    for batch in [1u64, 4, 8] {
        let layer = Layer::conv2d("conv", batch, 64, 56, 56, 64, 3, 3, 1, 1);
        let result = sim.simulate_layer(&layer).unwrap();
        assert!(
            result.total_cycles > previous,
            "batch {batch} should take longer"
        );
        previous = result.total_cycles;
    }
}
