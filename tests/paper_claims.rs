//! Integration tests asserting the qualitative claims of the paper — the
//! "shapes" the reproduction must preserve even though absolute numbers come
//! from a different substrate.
//!
//! Each test names the paper section/figure whose claim it checks. The tests
//! run on a reduced workload set so they stay fast in debug builds; the full
//! figure regeneration lives in the `neummu-experiments` binary.

use neummu::mem::interconnect::TransferKind;
use neummu::mmu::MmuConfig;
use neummu::npu::{DmaEngine, Layer, NpuConfig, TilingPlan};
use neummu::sim::dense::{DenseSimConfig, DenseSimulator, WorkloadResult};
use neummu::sim::embedding::{EmbeddingSimConfig, EmbeddingSimulator, GatherStrategy};
use neummu::vmem::PageSize;
use neummu::workloads::EmbeddingModel;

/// A memory-bound recurrent cell: the workload class the paper's Figure 8
/// shows suffering the most from translation overhead.
fn lstm_probe() -> Layer {
    Layer::lstm_cell("claims_lstm", 1, 1024, 1024, 1)
}

/// A compute-heavier convolution.
fn conv_probe() -> Layer {
    Layer::conv2d("claims_conv", 2, 128, 28, 28, 128, 3, 3, 1, 1)
}

fn simulate(layer: &Layer, mmu: MmuConfig) -> WorkloadResult {
    DenseSimulator::new(DenseSimConfig::with_mmu(mmu))
        .simulate_layer(layer)
        .unwrap()
}

/// Section III-C / Figure 6: a tile that fills the scratchpad touches on the
/// order of a thousand distinct 4 KB pages, and decomposes into several times
/// more memory transactions than pages.
#[test]
fn claim_tile_fetches_cause_kilo_page_translation_bursts() {
    let npu = NpuConfig::tpu_like();
    let dma = DmaEngine::new(npu.dma);
    let plan = TilingPlan::for_layer(&Layer::lstm_cell("big", 1, 2048, 2048, 1), &npu).unwrap();
    let biggest = plan
        .tiles()
        .iter()
        .filter_map(|t| t.w_fetch)
        .max_by_key(|f| f.bytes)
        .expect("the LSTM has weight fetches");
    let demand = dma.translation_demand(&biggest);
    assert!(
        demand.distinct_pages_4k > 1000,
        "pages per tile: {}",
        demand.distinct_pages_4k
    );
    assert!(
        demand.transactions >= 4 * demand.distinct_pages_4k,
        "transactions {} vs pages {}",
        demand.transactions,
        demand.distinct_pages_4k
    );
}

/// Figure 8 / Section IV-D: the baseline IOMMU loses a large fraction of
/// performance for dense workloads while NeuMMU stays within a few percent of
/// the oracular MMU.
#[test]
fn claim_baseline_iommu_is_slow_and_neummu_closes_the_gap() {
    for layer in [lstm_probe(), conv_probe()] {
        let oracle = simulate(&layer, MmuConfig::oracle());
        let iommu = simulate(&layer, MmuConfig::baseline_iommu());
        let neummu = simulate(&layer, MmuConfig::neummu());
        let iommu_norm = iommu.normalized_to(&oracle);
        let neummu_norm = neummu.normalized_to(&oracle);
        assert!(
            iommu_norm < 0.6,
            "{}: IOMMU normalized perf {iommu_norm}",
            layer.name()
        );
        assert!(
            neummu_norm > 0.95,
            "{}: NeuMMU normalized perf {neummu_norm}",
            layer.name()
        );
    }
}

/// Section III-C: enlarging the TLB alone does not fix the problem — the
/// bursts outrun the walkers regardless of TLB reach.
#[test]
fn claim_bigger_tlbs_alone_do_not_help() {
    let layer = lstm_probe();
    let oracle = simulate(&layer, MmuConfig::oracle());
    let small_tlb = simulate(&layer, MmuConfig::baseline_iommu());
    let huge_tlb = simulate(
        &layer,
        MmuConfig::baseline_iommu().with_tlb_entries(128 * 1024),
    );
    let small_norm = small_tlb.normalized_to(&oracle);
    let huge_norm = huge_tlb.normalized_to(&oracle);
    assert!(
        huge_norm < small_norm + 0.05,
        "128K-entry TLB should barely help: {small_norm} -> {huge_norm}"
    );
    assert!(huge_norm < 0.6);
}

/// Figure 10 + Figure 11: PRMB merging helps, and adding walkers on top of the
/// PRMB closes the remaining gap.
#[test]
fn claim_prmb_then_ptws_progressively_recover_performance() {
    let layer = lstm_probe();
    let oracle = simulate(&layer, MmuConfig::oracle());
    let baseline = simulate(&layer, MmuConfig::baseline_iommu()).normalized_to(&oracle);
    let with_prmb =
        simulate(&layer, MmuConfig::baseline_iommu().with_prmb_slots(32)).normalized_to(&oracle);
    let with_prmb_and_ptws = simulate(
        &layer,
        MmuConfig::baseline_iommu()
            .with_prmb_slots(32)
            .with_ptws(128),
    )
    .normalized_to(&oracle);
    assert!(
        with_prmb > baseline,
        "PRMB should help: {baseline} -> {with_prmb}"
    );
    assert!(
        with_prmb_and_ptws > with_prmb,
        "extra walkers should help further: {with_prmb} -> {with_prmb_and_ptws}"
    );
    assert!(with_prmb_and_ptws > 0.95);
}

/// Figure 12: a sea of walkers without the PRMB can match NeuMMU's
/// performance but spends several times more page-walk memory accesses
/// (energy).
#[test]
fn claim_many_ptws_without_prmb_waste_energy() {
    let layer = lstm_probe();
    let oracle = simulate(&layer, MmuConfig::oracle());
    let neummu = simulate(&layer, MmuConfig::neummu());
    let brute_force = simulate(&layer, MmuConfig::baseline_iommu().with_ptws(1024));
    assert!(brute_force.normalized_to(&oracle) > 0.9);
    assert!(neummu.normalized_to(&oracle) > 0.9);
    assert!(
        brute_force.walk_memory_accesses > 4 * neummu.walk_memory_accesses,
        "redundant walks should cost several times more memory accesses: {} vs {}",
        brute_force.walk_memory_accesses,
        neummu.walk_memory_accesses
    );
    assert!(brute_force.translation_energy_nj > 4.0 * neummu.translation_energy_nj);
}

/// Figure 13 / Section IV-C: the TPreg hits nearly always at the L4/L3
/// indices and less often at L2.
#[test]
fn claim_tpreg_hit_rates_follow_the_l4_l3_l2_shape() {
    let result = simulate(&lstm_probe(), MmuConfig::neummu());
    let stats = result.translation;
    assert!(
        stats.tpreg_l4_rate() > 0.95,
        "L4 rate {}",
        stats.tpreg_l4_rate()
    );
    assert!(stats.tpreg_l3_rate() > 0.95);
    assert!(stats.tpreg_l2_rate() <= stats.tpreg_l3_rate());
    assert!(stats.tpreg_skipped_levels > 0);
}

/// Section VI-A: 2 MB pages largely fix the baseline IOMMU for dense,
/// regular workloads.
#[test]
fn claim_large_pages_help_dense_workloads() {
    let layer = lstm_probe();
    let oracle_2m = simulate(&layer, MmuConfig::oracle().with_page_size(PageSize::Size2M));
    let iommu_2m = simulate(
        &layer,
        MmuConfig::baseline_iommu().with_page_size(PageSize::Size2M),
    );
    let oracle_4k = simulate(&layer, MmuConfig::oracle());
    let iommu_4k = simulate(&layer, MmuConfig::baseline_iommu());
    let norm_2m = iommu_2m.normalized_to(&oracle_2m);
    let norm_4k = iommu_4k.normalized_to(&oracle_4k);
    assert!(
        norm_2m > norm_4k + 0.2,
        "2MB pages should help a lot: {norm_4k} -> {norm_2m}"
    );
    assert!(norm_2m > 0.8);
}

/// Section V / Figure 15: CPU-relayed copies are far slower than NUMA loads,
/// and the fast NPU-to-NPU link beats PCIe.
#[test]
fn claim_numa_gathers_beat_cpu_relayed_copies() {
    let model = EmbeddingModel::dlrm();
    let sim = EmbeddingSimulator::new(EmbeddingSimConfig::with_mmu(MmuConfig::neummu()));
    let baseline = sim
        .simulate(&model, 8, GatherStrategy::HostRelayedCopy)
        .unwrap();
    let slow = sim
        .simulate(
            &model,
            8,
            GatherStrategy::NumaDirect {
                link: TransferKind::Pcie,
            },
        )
        .unwrap();
    let fast = sim
        .simulate(
            &model,
            8,
            GatherStrategy::NumaDirect {
                link: TransferKind::NpuLink,
            },
        )
        .unwrap();
    assert!(baseline.total_cycles() > slow.total_cycles());
    assert!(slow.total_cycles() >= fast.total_cycles());
    // The gather phase dominates the MMU-less baseline.
    assert!(baseline.gather_fraction() > fast.gather_fraction());
}

/// Section VI-A / Figure 16: for sparse embedding gathers, demand paging with
/// 2 MB pages moves orders of magnitude more data than 4 KB pages and loses
/// the performance that 4 KB demand paging retains.
#[test]
fn claim_large_page_demand_paging_overfetches_sparse_embeddings() {
    let model = EmbeddingModel::ncf();
    let strategy = GatherStrategy::DemandPaging {
        link: TransferKind::NpuLink,
    };
    let small = EmbeddingSimulator::new(EmbeddingSimConfig::with_mmu(MmuConfig::neummu()))
        .simulate(&model, 4, strategy)
        .unwrap();
    let large = EmbeddingSimulator::new(EmbeddingSimConfig::with_mmu(
        MmuConfig::neummu().with_page_size(PageSize::Size2M),
    ))
    .simulate(&model, 4, strategy)
    .unwrap();
    assert!(large.interconnect_bytes > 100 * small.interconnect_bytes);
    assert!(large.embedding_gather_cycles > 5 * small.embedding_gather_cycles);
}
