//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock timing loop instead of criterion's statistical machinery.
//! Good enough to keep the bench targets compiling, linking and producing
//! indicative numbers offline; swap back to real criterion when a registry
//! is available.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching criterion's API.
pub use std::hint::black_box;

/// Per-iteration throughput annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Benchmark driver handed to `bench_function` closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call, then a short timed loop.
        black_box(routine());
        let iters: u64 = 10;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = iters;
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration (accepted and ignored).
    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Sets the measurement duration (accepted and ignored).
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Sets the sample count (accepted and ignored).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::default();
        f(&mut bencher);
        let mean = if bencher.iterations > 0 {
            bencher.elapsed / u32::try_from(bencher.iterations).unwrap_or(u32::MAX)
        } else {
            Duration::ZERO
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if !mean.is_zero() => {
                format!(" ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if !mean.is_zero() => {
                format!(" ({:.0} B/s)", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("bench {}/{}: {:?}/iter{}", self.name, id, mean, rate);
        self
    }

    /// Finishes the group.
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = { $cfg };
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}
