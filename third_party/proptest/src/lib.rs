//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`Strategy`] for integer ranges / tuples / `any::<T>()`, the
//! `collection::{vec, hash_set}` strategies, and `prop_assert!` /
//! `prop_assert_eq!`. Cases are generated from a per-test deterministic
//! ChaCha8 stream; there is no shrinking — on failure the harness prints the
//! generated inputs and re-raises the panic.

#![forbid(unsafe_code)]

use std::collections::HashSet;
use std::hash::Hash;
use std::marker::PhantomData;
use std::ops::Range;

use rand::{Rng, SeedableRng};

/// The RNG driving case generation.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<T: rand::SampleUniform + Clone> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_range_inclusive {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                if end < <$t>::MAX {
                    rng.gen_range(start..end + 1)
                } else if start > <$t>::MIN {
                    // Avoid overflowing `end + 1` on full-width ranges.
                    rng.gen_range(start - 1..end) + 1
                } else {
                    rand::RngCore::next_u64(rng) as $t
                }
            }
        }
    )*};
}

impl_strategy_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for "any value of `T`" — see [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// Generates arbitrary values of `T` (supported for `bool` and the integer
/// primitives).
#[must_use]
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a target size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates hash sets whose size is drawn uniformly from `size`.
    ///
    /// If the element strategy cannot produce enough distinct values the set
    /// may be smaller than drawn, mirroring proptest's behaviour of treating
    /// the size as a target rather than a guarantee.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.gen_range(self.size.clone());
            let mut out = HashSet::with_capacity(target);
            // Bounded attempts so narrow domains cannot loop forever.
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(20) + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Namespace mirror of `proptest::prop` (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        Any, Just, ProptestConfig, Strategy,
    };
}

/// Derives the per-test RNG seed from the property name (FNV-1a), keeping
/// runs deterministic while decorrelating sibling properties.
#[must_use]
pub fn seed_for(test_name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Builds the [`TestRng`] for one property.
#[must_use]
pub fn rng_for(test_name: &str) -> TestRng {
    TestRng::seed_from_u64(seed_for(test_name))
}

/// Skips the current case when the assumption does not hold.
///
/// The property body runs inside a closure returning `bool` (`true` = case
/// executed); this early-returns `false`, and the harness regenerates the
/// case instead of counting it, mirroring real proptest's reject-and-retry
/// semantics (with a bounded global reject budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return false;
        }
    };
}

/// Asserts a condition inside a property (alias of `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (alias of `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (alias of `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests.
///
/// Supports the standard form: an optional `#![proptest_config(expr)]` inner
/// attribute followed by `#[test]` functions whose arguments are
/// `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut __case = 0u32;
            let mut __rejects = 0u32;
            // `prop_assume!` rejections regenerate the case rather than
            // consuming it; the budget bounds pathological assumptions.
            let __reject_budget = __config.cases.saturating_mul(10) + 100;
            while __case < __config.cases {
                let mut __inputs = ::std::string::String::new();
                $(let $arg = {
                    let __value = $crate::Strategy::generate(&($strat), &mut __rng);
                    __inputs.push_str(concat!(stringify!($arg), " = "));
                    __inputs.push_str(&::std::format!("{:?}; ", __value));
                    __value
                };)*
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| -> bool {
                        $body
                        #[allow(unreachable_code)]
                        true
                    }),
                );
                match __outcome {
                    ::std::result::Result::Ok(true) => __case += 1,
                    ::std::result::Result::Ok(false) => {
                        __rejects += 1;
                        assert!(
                            __rejects <= __reject_budget,
                            "proptest: {} rejected {} cases via prop_assume! \
                             (budget {}); loosen the strategy or the assumption",
                            stringify!($name),
                            __rejects,
                            __reject_budget,
                        );
                    }
                    ::std::result::Result::Err(__panic) => {
                        ::std::eprintln!(
                            "proptest: {} failed at case {}/{} with inputs: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __inputs,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    static EXECUTED: AtomicU32 = AtomicU32::new(0);

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Rejected cases must be regenerated, not consumed: even though
        /// roughly half of the generated values fail the assumption, all 32
        /// cases must execute past it.
        #[test]
        fn assume_regenerates_rejected_cases(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
            EXECUTED.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn assume_executed_full_case_count() {
        assume_regenerates_rejected_cases();
        assert!(EXECUTED.load(Ordering::Relaxed) >= 32);
    }
}
