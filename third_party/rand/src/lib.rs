//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! Provides the subset this workspace uses: [`RngCore`], [`Rng::gen_range`]
//! over integer ranges, [`SeedableRng::seed_from_u64`], and
//! `distributions::{Distribution, Open01, Uniform-like sampling}`. Generators
//! live in companion crates (see the `rand_chacha` stub).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level random number generation.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is negligible
                // for the span sizes used in simulation workloads.
                let x = rng.next_u64();
                let bounded = ((u128::from(x) * u128::from(span)) >> 64) as u64;
                range.start + bounded as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.wrapping_sub(range.start) as $u as u64;
                let x = rng.next_u64();
                let bounded = ((u128::from(x) * u128::from(span)) >> 64) as u64;
                range.start.wrapping_add(bounded as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// High-level random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the half-open range `[low, high)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Samples a uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        distributions::Distribution::sample(&distributions::Open01, self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it over the full
    /// internal state with SplitMix64 (the conventional `seed_from_u64`
    /// construction).
    fn seed_from_u64(state: u64) -> Self;
}

/// Distributions over random values.
pub mod distributions {
    use super::RngCore;

    /// Types that sample values of `T` from an RNG.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over the open interval `(0, 1)`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Open01;

    impl Distribution<f64> for Open01 {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 52 random mantissa bits plus a half-ulp offset keeps the result
            // strictly inside (0, 1).
            let bits = rng.next_u64() >> 12;
            (bits as f64 + 0.5) / (1u64 << 52) as f64
        }
    }

    /// Standard uniform distribution over the half-open unit interval `[0, 1)`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// SplitMix64 state expansion, shared with the generator crates.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
