//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream generator
//! implementing the stub `rand` traits. The cipher core is the standard
//! ChaCha quarter-round construction (RFC 8439) with 8 rounds; seeding
//! expands the 64-bit seed into the 256-bit key with SplitMix64, so streams
//! are deterministic and high-quality, though not bit-identical to the real
//! `rand_chacha` crate.

#![forbid(unsafe_code)]

use rand::{splitmix64, RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;
const BLOCK_WORDS: usize = 16;

/// A ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    state: [u32; BLOCK_WORDS],
    /// Current keystream block.
    block: [u32; BLOCK_WORDS],
    /// Next unread word within `block`.
    index: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..4 {
            let k = splitmix64(&mut sm);
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter (12..14) starts at zero; nonce (14..16) stays zero.
        let mut rng = ChaCha8Rng {
            state,
            block: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn keystream_spreads_over_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut buckets = [0u32; 16];
        for _ in 0..16_000 {
            buckets[(rng.next_u64() >> 60) as usize] += 1;
        }
        // Each of 16 buckets expects ~1000 hits; allow generous slack.
        assert!(
            buckets.iter().all(|&b| (700..1300).contains(&b)),
            "{buckets:?}"
        );
    }
}
