//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal, API-compatible subset of serde: the
//! [`Serialize`] / [`Deserialize`] traits, the derive macros (re-exported from
//! `serde_derive`), and a self-describing [`Value`] tree that the companion
//! `serde_json` stub renders as JSON text.
//!
//! Only the surface this workspace actually uses is provided. `Serialize` is
//! reduced to "convert to a [`Value`]", which is sufficient for writing
//! experiment artifacts; `Deserialize` is a marker trait (nothing in the
//! workspace deserializes yet).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet, VecDeque};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value, mirroring the JSON data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key/value map (field order is preserved).
    Object(Vec<(String, Value)>),
}

/// Types that can be serialized into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a self-describing [`Value`].
    fn to_value(&self) -> Value;
}

/// Marker trait for deserializable types.
///
/// The derive macro emits an empty impl; no deserialization machinery exists
/// in this stand-in because nothing in the workspace reads data back yet.
pub trait Deserialize {}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(u64::from(*self)) }
        }
    )*};
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(i64::from(*self)) }
        }
    )*};
}

impl_serialize_unsigned!(u8, u16, u32, u64);
impl_serialize_signed!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::U64(u64::try_from(*self).unwrap_or(u64::MAX))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

/// Maps serialize as an array of `[key, value]` pairs so that non-string
/// keys (tuples, typed ids) remain representable in JSON.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let kv = k.to_value();
                (format!("{kv:?}"), Value::Array(vec![kv, v.to_value()]))
            })
            .collect();
        // Hash iteration order is arbitrary; sort for deterministic output.
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Array(pairs.into_iter().map(|(_, pair)| pair).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BinaryHeap<T> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output; heap iteration order is arbitrary.
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        // Hash iteration order is arbitrary; sort serialized elements by
        // their rendered form for deterministic output.
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Array(items)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serialize_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}

impl_serialize_tuple!(A: 0);
impl_serialize_tuple!(A: 0, B: 1);
impl_serialize_tuple!(A: 0, B: 1, C: 2);
impl_serialize_tuple!(A: 0, B: 1, C: 2, D: 3);

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_owned(), Value::U64(self.as_secs())),
            (
                "nanos".to_owned(),
                Value::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}
