//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses — non-generic structs (named, tuple,
//! unit) and enums (unit, tuple and struct variants) — without depending on
//! `syn`/`quote`, which are unavailable in the offline build environment.
//! The generated `Serialize` impl builds the `serde::Value` tree using
//! serde's externally-tagged enum representation; `Deserialize` expands to a
//! marker impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    NamedStruct { fields: Vec<String> },
    TupleStruct { arity: usize },
    UnitStruct,
    Enum { variants: Vec<Variant> },
}

enum VariantKind {
    Unit,
    Tuple { arity: usize },
    Struct { fields: Vec<String> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

struct Parsed {
    name: String,
    /// Raw generics declaration including bounds, e.g. `K: Hash + Eq`.
    generics_decl: String,
    /// Bare generic parameter names, e.g. `K`.
    generic_names: Vec<String>,
    shape: Shape,
}

impl Parsed {
    /// `impl<decl> Trait for Name<names>` header pieces, plus extra
    /// `Serialize` bounds on every type parameter when requested.
    fn impl_header(&self, trait_path: &str, bound_serialize: bool) -> String {
        if self.generic_names.is_empty() {
            return format!("impl {trait_path} for {}", self.name);
        }
        let where_clause = if bound_serialize {
            let bounds: Vec<String> = self
                .generic_names
                .iter()
                .map(|p| format!("{p}: ::serde::Serialize"))
                .collect();
            format!(" where {}", bounds.join(", "))
        } else {
            String::new()
        };
        format!(
            "impl<{}> {trait_path} for {}<{}>{}",
            self.generics_decl,
            self.name,
            self.generic_names.join(", "),
            where_clause
        )
    }
}

/// Extracts the generics declaration: returns (decl tokens as text, bare
/// parameter names, rest-after-`>`).
fn parse_generics(tokens: &[TokenTree]) -> (String, Vec<String>, &[TokenTree]) {
    if !matches!(tokens.first(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return (String::new(), Vec::new(), tokens);
    }
    let mut depth = 0usize;
    let mut end = 0usize;
    for (i, tt) in tokens.iter().enumerate() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && !completes_arrow(&tokens[..i]) => {
                depth -= 1;
                if depth == 0 {
                    end = i;
                    break;
                }
            }
            _ => {}
        }
    }
    let inner = &tokens[1..end];
    // Render through TokenStream's Display, which preserves token jointness
    // (`::` must not become `: :`).
    let decl = TokenStream::from_iter(inner.iter().cloned()).to_string();
    let names = split_top_level_commas(inner)
        .iter()
        .filter_map(|param| {
            let param = strip_attrs_and_vis(param);
            match param.first() {
                // Lifetimes (`'a`) need no Serialize bound and are kept only
                // in the decl; const params start with the `const` keyword.
                Some(TokenTree::Punct(p)) if p.as_char() == '\'' => None,
                Some(TokenTree::Ident(id)) if id.to_string() == "const" => None,
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect();
    (decl, names, &tokens[end + 1..])
}

/// Splits the tokens of a brace/paren group at top-level commas, treating
/// angle brackets as nesting (they are plain puncts in a `TokenStream`, so
/// `HashMap<K, V>` must not split at its inner comma).
fn split_top_level_commas(group: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0usize;
    for tt in group {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                cur.push(tt.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' && !completes_arrow(&cur) => {
                angle_depth = angle_depth.saturating_sub(1);
                cur.push(tt.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            other => cur.push(other.clone()),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// True when the next `>` completes a `->` arrow (`-` with joint spacing
/// precedes it) rather than closing an angle bracket, e.g. in
/// `HashMap<fn(u8) -> u8, u64>`.
fn completes_arrow(before: &[TokenTree]) -> bool {
    matches!(
        before.last(),
        Some(TokenTree::Punct(p))
            if p.as_char() == '-' && p.spacing() == proc_macro::Spacing::Joint
    )
}

/// Strips leading attributes (`#` + bracket group) and visibility (`pub`,
/// optionally followed by a paren group) from an item or field token list.
fn strip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // attribute: `#` then `[...]`
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return &tokens[i..],
        }
    }
}

/// Field name of one named-field declaration (`name: Type`).
fn field_name(field: &[TokenTree]) -> String {
    let field = strip_attrs_and_vis(field);
    match field.first() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected field name, found {other:?}"),
    }
}

fn parse_named_fields(group: &[TokenTree]) -> Vec<String> {
    split_top_level_commas(group)
        .iter()
        .map(|f| field_name(f))
        .collect()
}

fn parse_variant(tokens: &[TokenTree]) -> Variant {
    let tokens = strip_attrs_and_vis(tokens);
    let name = match tokens.first() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected variant name, found {other:?}"),
    };
    let kind = match tokens.get(1) {
        None => VariantKind::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            VariantKind::Tuple {
                arity: split_top_level_commas(&inner).len(),
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            VariantKind::Struct {
                fields: parse_named_fields(&inner),
            }
        }
        // `Variant = discriminant`
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantKind::Unit,
        other => panic!("serde_derive stub: unsupported variant shape {other:?}"),
    };
    Variant { name, kind }
}

fn parse_input(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let tokens = strip_attrs_and_vis(&tokens);
    let (kw, rest) = match tokens.first() {
        Some(TokenTree::Ident(id)) => (id.to_string(), &tokens[1..]),
        other => panic!("serde_derive stub: expected struct/enum, found {other:?}"),
    };
    let name = match rest.first() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, found {other:?}"),
    };
    let (generics_decl, generic_names, after_name) = parse_generics(&rest[1..]);
    // A `where` clause, if present, sits before the body group; fold it into
    // the generics declaration is unnecessary for this workspace — reject it
    // loudly instead of generating wrong code.
    if matches!(after_name.first(), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        panic!("serde_derive stub: `where` clauses are not supported (type `{name}`)");
    }
    let parsed = |shape| Parsed {
        name: name.clone(),
        generics_decl: generics_decl.clone(),
        generic_names: generic_names.clone(),
        shape,
    };
    match kw.as_str() {
        "struct" => match after_name.first() {
            None => parsed(Shape::UnitStruct),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => parsed(Shape::UnitStruct),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                parsed(Shape::NamedStruct {
                    fields: parse_named_fields(&inner),
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                parsed(Shape::TupleStruct {
                    arity: split_top_level_commas(&inner).len(),
                })
            }
            other => panic!("serde_derive stub: unsupported struct body {other:?}"),
        },
        "enum" => match after_name.first() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let variants = split_top_level_commas(&inner)
                    .iter()
                    .map(|v| parse_variant(v))
                    .collect();
                parsed(Shape::Enum { variants })
            }
            other => panic!("serde_derive stub: expected enum body, found {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    }
}

/// `#[derive(Serialize)]` — structural serialization into `serde::Value`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::UnitStruct => "::serde::Value::Null".to_owned(),
        Shape::NamedStruct { fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            if *arity == 1 {
                // Newtype structs serialize transparently, as in real serde.
                items[0].clone()
            } else {
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            }
        }
        Shape::Enum { variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantKind::Tuple { arity } => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            let payload = if *arity == 1 {
                                items[0].clone()
                            } else {
                                format!(
                                    "::serde::Value::Array(::std::vec![{}])",
                                    items.join(", ")
                                )
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), {payload})]),",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Struct { fields } => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Object(::std::vec![{}]))]),",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] {header} {{ \
             fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}",
        header = parsed.impl_header("::serde::Serialize", true),
    )
    .parse()
    .expect("serde_derive stub: generated impl failed to parse")
}

/// `#[derive(Deserialize)]` — marker impl only.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    format!(
        "#[automatically_derived] {} {{}}",
        parsed.impl_header("::serde::Deserialize", false)
    )
    .parse()
    .expect("serde_derive stub: generated impl failed to parse")
}
