//! Offline stand-in for `serde_json`: renders the stub `serde::Value` tree as
//! JSON text. Only serialization is provided; the workspace never parses JSON.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Serialize, Value};

/// Serialization error.
///
/// The stub's value model is always representable, so errors only arise from
/// non-finite floats, which JSON cannot encode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error {
                    message: format!("non-finite float {x}"),
                });
            }
            // Ensure the output re-reads as a float, matching serde_json.
            if x.fract() == 0.0 && x.abs() < 1e15 {
                out.push_str(&format!("{x:.1}"));
            } else {
                out.push_str(&x.to_string());
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            write_seq(
                out,
                items.len(),
                indent,
                depth,
                '[',
                ']',
                |out, i, ind, d| write_value(out, &items[i], ind, d),
            )?;
        }
        Value::Object(entries) => {
            write_seq(
                out,
                entries.len(),
                indent,
                depth,
                '{',
                '}',
                |out, i, ind, d| {
                    let (k, v) = &entries[i];
                    write_json_string(out, k);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    write_value(out, v, ind, d)
                },
            )?;
        }
    }
    Ok(())
}

fn write_seq(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, Option<usize>, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    if len == 0 {
        out.push(close);
        return Ok(());
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i, indent, depth + 1)?;
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
    Ok(())
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_arrays_and_objects() {
        assert_eq!(to_string(&vec![1u64, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        let pretty = to_string_pretty(&vec![1u64]).unwrap();
        assert_eq!(pretty, "[\n  1\n]");
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }
}
